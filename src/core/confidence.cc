#include "core/confidence.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"

namespace maybms {

namespace {

// Union-find over component ids for clustering.
class ComponentUf {
 public:
  ComponentId Find(ComponentId c) {
    auto it = parent_.find(c);
    if (it == parent_.end()) {
      parent_[c] = c;
      return c;
    }
    ComponentId root = c;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[c] != root) {
      ComponentId next = parent_[c];
      parent_[c] = root;
      c = next;
    }
    return root;
  }
  void Union(ComponentId a, ComponentId b) { parent_[Find(a)] = Find(b); }

 private:
  std::unordered_map<ComponentId, ComponentId> parent_;
};

struct VectorHash {
  size_t operator()(const Tuple& t) const { return TupleHash(t); }
};
struct VectorEq {
  bool operator()(const Tuple& a, const Tuple& b) const {
    return TupleCompare(a, b) == 0;
  }
};

using VectorProb = std::unordered_map<Tuple, double, VectorHash, VectorEq>;

}  // namespace

Result<Relation> ConfTable(const WsdDb& db, const std::string& rel_name,
                           const ConfidenceOptions& options) {
  MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* rel, db.GetRelation(rel_name));

  // Precompute, per tuple, the touched components; gating-component
  // discovery is hoisted out of the per-tuple loop via an owner->component
  // index.
  std::unordered_map<OwnerId, std::vector<ComponentId>> owner_comps;
  for (ComponentId id : db.LiveComponents()) {
    const Component& c = db.component(id);
    std::unordered_set<OwnerId> seen;
    for (uint32_t s = 0; s < c.NumSlots(); ++s) {
      if (seen.insert(c.slot(s).owner).second) {
        owner_comps[c.slot(s).owner].push_back(id);
      }
    }
  }
  auto touched = [&](const WsdTuple& t) {
    std::vector<ComponentId> out;
    for (const auto& cell : t.cells) {
      if (cell.is_ref()) out.push_back(cell.ref().cid);
    }
    for (OwnerId o : t.deps) {
      auto it = owner_comps.find(o);
      if (it != owner_comps.end()) {
        out.insert(out.end(), it->second.begin(), it->second.end());
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  };

  // Cluster tuples through shared components.
  ComponentUf uf;
  std::vector<std::vector<ComponentId>> tuple_comps(rel->NumTuples());
  for (size_t i = 0; i < rel->NumTuples(); ++i) {
    tuple_comps[i] = touched(rel->tuple(i));
    for (size_t k = 1; k < tuple_comps[i].size(); ++k) {
      uf.Union(tuple_comps[i][0], tuple_comps[i][k]);
    }
  }
  // cluster root -> tuple indexes; certain tuples go to the trivial pile.
  std::map<ComponentId, std::vector<size_t>> clusters;
  std::vector<size_t> certain_tuples;
  for (size_t i = 0; i < rel->NumTuples(); ++i) {
    if (tuple_comps[i].empty()) {
      certain_tuples.push_back(i);
    } else {
      clusters[uf.Find(tuple_comps[i][0])].push_back(i);
    }
  }

  // P(vector present) per cluster.
  std::vector<VectorProb> cluster_probs;

  // Trivial pile: always-present vectors.
  if (!certain_tuples.empty()) {
    VectorProb vp;
    for (size_t i : certain_tuples) {
      Tuple v;
      v.reserve(rel->schema().size());
      for (const auto& cell : rel->tuple(i).cells) v.push_back(cell.value());
      vp[v] = 1.0;
    }
    cluster_probs.push_back(std::move(vp));
  }

  for (const auto& [root, tuple_idxs] : clusters) {
    // Collect the cluster's components (union over member tuples).
    std::vector<ComponentId> comps;
    for (size_t i : tuple_idxs) {
      comps.insert(comps.end(), tuple_comps[i].begin(), tuple_comps[i].end());
    }
    std::sort(comps.begin(), comps.end());
    comps.erase(std::unique(comps.begin(), comps.end()), comps.end());

    // Budget check.
    size_t states = 1;
    for (ComponentId id : comps) {
      size_t rows = db.component(id).NumRows();
      if (rows == 0) return Status::Inconsistent("empty component");
      if (states > options.max_cluster_states / rows) {
        return Status::ResourceExhausted(
            StrFormat("confidence cluster needs more than %zu states",
                      options.max_cluster_states));
      }
      states *= rows;
    }

    // Per tuple: resolve which slots gate it in each cluster component.
    struct Member {
      const WsdTuple* t;
      // per component (aligned with comps): gating slot indexes
      std::vector<std::vector<uint32_t>> gating;
    };
    std::vector<Member> members;
    members.reserve(tuple_idxs.size());
    for (size_t i : tuple_idxs) {
      Member m;
      m.t = &rel->tuple(i);
      m.gating.resize(comps.size());
      for (size_t k = 0; k < comps.size(); ++k) {
        const Component& c = db.component(comps[k]);
        for (uint32_t s = 0; s < c.NumSlots(); ++s) {
          if (std::binary_search(m.t->deps.begin(), m.t->deps.end(),
                                 c.slot(s).owner)) {
            m.gating[k].push_back(s);
          }
        }
      }
      members.push_back(std::move(m));
    }

    // Map component id -> position in comps for cell resolution.
    std::unordered_map<ComponentId, size_t> comp_pos;
    for (size_t k = 0; k < comps.size(); ++k) comp_pos[comps[k]] = k;

    // Odometer over the cluster's component rows.
    std::vector<size_t> choice(comps.size(), 0);
    VectorProb vp;
    Tuple v(rel->schema().size());
    for (;;) {
      double p = 1.0;
      for (size_t k = 0; k < comps.size(); ++k) {
        p *= db.component(comps[k]).prob(choice[k]);
      }
      if (p > 0.0) {
        // Which vectors are present in this state? Dedup within state.
        std::unordered_set<size_t> seen_hashes;
        std::vector<Tuple> present;
        for (const auto& m : members) {
          bool alive = true;
          for (size_t k = 0; alive && k < comps.size(); ++k) {
            const Component& ck = db.component(comps[k]);
            for (uint32_t s : m.gating[k]) {
              if (ck.IsBottomAt(choice[k], s)) {
                alive = false;
                break;
              }
            }
          }
          if (!alive) continue;
          bool dead_value = false;
          for (size_t c = 0; c < m.t->cells.size(); ++c) {
            const Cell& cell = m.t->cells[c];
            if (cell.is_certain()) {
              v[c] = cell.value();
            } else {
              size_t k = comp_pos.at(cell.ref().cid);
              const PackedValue& pv =
                  db.component(comps[k]).packed(choice[k], cell.ref().slot);
              if (pv.is_bottom()) {
                dead_value = true;
                break;
              }
              v[c] = pv.ToValue();
            }
          }
          if (dead_value) continue;
          bool dup = false;
          for (const auto& u : present) {
            if (TupleCompare(u, v) == 0) {
              dup = true;
              break;
            }
          }
          if (!dup) present.push_back(v);
        }
        for (auto& u : present) vp[u] += p;
      }
      // Advance odometer.
      size_t k = 0;
      for (; k < comps.size(); ++k) {
        if (++choice[k] < db.component(comps[k]).NumRows()) break;
        choice[k] = 0;
      }
      if (k == comps.size()) break;
      if (comps.empty()) break;
    }
    if (comps.empty()) {
      // Cannot happen (cluster implies components), but stay safe.
      continue;
    }
    cluster_probs.push_back(std::move(vp));
  }

  // Combine: conf(v) = 1 - Π (1 - P_cluster(v)).
  VectorProb conf;
  for (const auto& vp : cluster_probs) {
    for (const auto& [v, p] : vp) {
      conf.emplace(v, 0.0);
    }
  }
  for (auto& [v, total] : conf) {
    double absent = 1.0;
    for (const auto& vp : cluster_probs) {
      auto it = vp.find(v);
      if (it != vp.end()) absent *= (1.0 - std::min(1.0, it->second));
    }
    total = 1.0 - absent;
  }

  // Materialize sorted output.
  Schema out_schema = rel->schema();
  std::string conf_name = "conf";
  int suffix = 2;
  while (out_schema.IndexOf(conf_name)) {
    conf_name = "conf_" + std::to_string(suffix++);
  }
  MAYBMS_RETURN_IF_ERROR(out_schema.Add({conf_name, ValueType::kDouble}));
  std::vector<std::pair<Tuple, double>> rows(conf.begin(), conf.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return TupleCompare(a.first, b.first) < 0;
  });
  Relation out(rel_name + "_conf", out_schema);
  for (auto& [v, p] : rows) {
    Tuple t = v;
    t.push_back(Value::Double(p));
    out.AppendUnchecked(std::move(t));
  }
  return out;
}

Result<Relation> PossibleTuples(const WsdDb& db, const std::string& rel,
                                const ConfidenceOptions& options) {
  return ConfTable(db, rel, options);
}

Result<Relation> CertainTuples(const WsdDb& db, const std::string& rel_name,
                               const ConfidenceOptions& options) {
  MAYBMS_ASSIGN_OR_RETURN(Relation with_conf,
                          ConfTable(db, rel_name, options));
  // Strip the conf column, keep rows with conf ~ 1.
  const Schema& s = with_conf.schema();
  std::vector<size_t> keep_cols;
  for (size_t i = 0; i + 1 < s.size(); ++i) keep_cols.push_back(i);
  Relation out(rel_name + "_certain", s.Project(keep_cols));
  size_t conf_col = s.size() - 1;
  for (const auto& row : with_conf.rows()) {
    if (row[conf_col].as_double() >= 1.0 - options.eps) {
      Tuple t(row.begin(), row.end() - 1);
      out.AppendUnchecked(std::move(t));
    }
  }
  return out;
}

Result<double> ExpectedCount(const WsdDb& db, const std::string& rel_name) {
  MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* rel, db.GetRelation(rel_name));
  double total = 0.0;
  for (const auto& t : rel->tuples()) {
    total += db.ExistenceProbability(t);
  }
  return total;
}

Result<double> ExpectedSum(const WsdDb& db, const std::string& rel_name,
                           const std::string& column,
                           const ConfidenceOptions& options) {
  MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* rel, db.GetRelation(rel_name));
  MAYBMS_ASSIGN_OR_RETURN(size_t col, rel->schema().Resolve(column));

  // owner -> components gating it (built once).
  std::unordered_map<OwnerId, std::vector<ComponentId>> owner_comps;
  for (ComponentId id : db.LiveComponents()) {
    const Component& c = db.component(id);
    std::unordered_set<OwnerId> seen;
    for (uint32_t s = 0; s < c.NumSlots(); ++s) {
      if (seen.insert(c.slot(s).owner).second) {
        owner_comps[c.slot(s).owner].push_back(id);
      }
    }
  }

  double total = 0.0;
  for (const auto& t : rel->tuples()) {
    // Components relevant for this tuple's term.
    std::vector<ComponentId> comps;
    if (t.cells[col].is_ref()) comps.push_back(t.cells[col].ref().cid);
    for (OwnerId o : t.deps) {
      auto it = owner_comps.find(o);
      if (it != owner_comps.end()) {
        comps.insert(comps.end(), it->second.begin(), it->second.end());
      }
    }
    std::sort(comps.begin(), comps.end());
    comps.erase(std::unique(comps.begin(), comps.end()), comps.end());

    if (comps.empty()) {
      const Value& v = t.cells[col].value();
      if (v.is_null()) continue;
      if (!v.is_numeric()) {
        return Status::TypeMismatch("ESUM over non-numeric value " +
                                    v.ToString());
      }
      total += v.NumericValue();
      continue;
    }
    size_t states = 1;
    for (ComponentId id : comps) {
      size_t rows = db.component(id).NumRows();
      if (rows == 0) return Status::Inconsistent("empty component");
      if (states > options.max_cluster_states / rows) {
        return Status::ResourceExhausted(
            "ESUM tuple cluster exceeds enumeration budget");
      }
      states *= rows;
    }
    // Gating slot layout per component.
    std::vector<std::vector<uint32_t>> gating(comps.size());
    for (size_t k = 0; k < comps.size(); ++k) {
      const Component& c = db.component(comps[k]);
      for (uint32_t s = 0; s < c.NumSlots(); ++s) {
        if (std::binary_search(t.deps.begin(), t.deps.end(),
                               c.slot(s).owner)) {
          gating[k].push_back(s);
        }
      }
    }
    std::unordered_map<ComponentId, size_t> comp_pos;
    for (size_t k = 0; k < comps.size(); ++k) comp_pos[comps[k]] = k;

    std::vector<size_t> choice(comps.size(), 0);
    for (;;) {
      double p = 1.0;
      for (size_t k = 0; k < comps.size(); ++k) {
        p *= db.component(comps[k]).prob(choice[k]);
      }
      if (p > 0.0) {
        bool alive = true;
        for (size_t k = 0; alive && k < comps.size(); ++k) {
          const Component& ck = db.component(comps[k]);
          for (uint32_t s : gating[k]) {
            if (ck.IsBottomAt(choice[k], s)) {
              alive = false;
              break;
            }
          }
        }
        if (alive) {
          const Cell& cell = t.cells[col];
          Value v = cell.is_certain()
                        ? cell.value()
                        : db.component(comps[comp_pos.at(cell.ref().cid)])
                              .ValueAt(choice[comp_pos.at(cell.ref().cid)],
                                       cell.ref().slot);
          if (!v.is_null() && !v.is_bottom()) {
            if (!v.is_numeric()) {
              return Status::TypeMismatch("ESUM over non-numeric value " +
                                          v.ToString());
            }
            total += p * v.NumericValue();
          }
        }
      }
      size_t k = 0;
      for (; k < comps.size(); ++k) {
        if (++choice[k] < db.component(comps[k]).NumRows()) break;
        choice[k] = 0;
      }
      if (k == comps.size()) break;
    }
  }
  return total;
}

}  // namespace maybms
