// Construction of world-set databases: from certain relations, from
// or-set cells (the census noise process), and from explicit joint
// components (the paper's medical example, where r1.Diagnosis and r1.Test
// are correlated within one component).
#ifndef MAYBMS_CORE_BUILDER_H_
#define MAYBMS_CORE_BUILDER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/wsd.h"

namespace maybms {

/// One alternative of an or-set: value and its probability.
struct Alternative {
  Value value;
  double prob = 1.0;
};

/// Specification of one cell when inserting a tuple.
class CellSpec {
 public:
  /// A certain value.
  static CellSpec Certain(Value v);
  /// An or-set with explicit probabilities (must sum to 1).
  static CellSpec OrSet(std::vector<Alternative> alts);
  /// An or-set with uniform probabilities.
  static CellSpec UniformOrSet(std::vector<Value> values);
  /// A placeholder to be covered later by AddJointComponent.
  static CellSpec Pending();

  bool is_certain() const { return kind_ == Kind::kCertain; }
  bool is_orset() const { return kind_ == Kind::kOrSet; }
  bool is_pending() const { return kind_ == Kind::kPending; }
  const Value& value() const { return alts_[0].value; }
  const std::vector<Alternative>& alternatives() const { return alts_; }

 private:
  enum class Kind { kCertain, kOrSet, kPending };
  Kind kind_ = Kind::kCertain;
  std::vector<Alternative> alts_;
};

/// Handle to a tuple inserted through the builder functions.
struct TupleHandle {
  std::string relation;
  size_t index = 0;
  OwnerId owner = 0;
};

/// A field of a previously inserted tuple, addressed by attribute name.
struct FieldSpec {
  TupleHandle tuple;
  std::string attr;
};

/// Converts a certain database into a WSD (every cell inline, one world).
WsdDb FromCatalog(const Catalog& catalog);

/// Inserts a tuple with per-cell specs. Each or-set cell becomes its own
/// single-slot component owned by the tuple. Pending cells must later be
/// covered by AddJointComponent. Returns a handle for later reference.
Result<TupleHandle> InsertTuple(WsdDb* db, const std::string& relation,
                                std::vector<CellSpec> cells);

/// Creates one component jointly covering the given fields (possibly of
/// different tuples); `rows` assigns values to the fields in order, with
/// probabilities summing to 1. The targeted cells must be pending or
/// certain; they become references into the new component.
Result<ComponentId> AddJointComponent(
    WsdDb* db, const std::vector<FieldSpec>& fields,
    const std::vector<std::pair<std::vector<Value>, double>>& rows);

/// Replaces a (currently certain) cell of an existing tuple with an
/// or-set: creates a fresh single-slot component. This is the noise
/// injection primitive of the census experiments.
Result<ComponentId> MakeCellUncertain(WsdDb* db, const std::string& relation,
                                      size_t row, size_t col,
                                      std::vector<Alternative> alts);

}  // namespace maybms

#endif  // MAYBMS_CORE_BUILDER_H_
