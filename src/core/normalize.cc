#include "core/normalize.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace maybms {

namespace {

// Reference information gathered in one scan over the templates.
struct RefIndex {
  // (cid, slot) -> number of referencing template cells.
  std::unordered_map<uint64_t, size_t> slot_refs;
  // owners appearing in some tuple's deps.
  std::unordered_set<OwnerId> live_owners;

  static uint64_t Key(ComponentId cid, uint32_t slot) {
    return (static_cast<uint64_t>(cid) << 32) | slot;
  }
};

RefIndex BuildRefIndex(const WsdDb& db) {
  RefIndex idx;
  for (const auto& [key, rel] : db.relations()) {
    for (const auto& t : rel.tuples()) {
      for (OwnerId o : t.deps) idx.live_owners.insert(o);
      for (const auto& cell : t.cells) {
        if (cell.is_ref()) {
          idx.slot_refs[RefIndex::Key(cell.ref().cid, cell.ref().slot)]++;
        }
      }
    }
  }
  return idx;
}

// Step 1: within each component row, a ⊥ on any slot of an owner spreads
// to all slots of that owner in the same row.
bool PropagateBottom(WsdDb* db) {
  bool changed = false;
  for (ComponentId id : db->LiveComponents()) {
    Component& c = db->mutable_component(id);
    // owner -> slots in this component
    std::unordered_map<OwnerId, std::vector<uint32_t>> by_owner;
    for (uint32_t s = 0; s < c.NumSlots(); ++s) {
      by_owner[c.slot(s).owner].push_back(s);
    }
    bool multi = false;
    for (const auto& [o, slots] : by_owner) {
      if (slots.size() > 1) {
        multi = true;
        break;
      }
    }
    if (!multi) continue;
    for (size_t r = 0; r < c.NumRows(); ++r) {
      for (const auto& [o, slots] : by_owner) {
        if (slots.size() < 2) continue;
        bool any_bottom = false;
        for (uint32_t s : slots) {
          if (c.IsBottomAt(r, s)) {
            any_bottom = true;
            break;
          }
        }
        if (!any_bottom) continue;
        for (uint32_t s : slots) {
          if (!c.IsBottomAt(r, s)) {
            c.SetPacked(r, s, PackedValue::Bottom());
            changed = true;
          }
        }
      }
    }
  }
  return changed;
}

// Step 2: remove tuples with existence probability 0.
//
// P(exists) factorizes per component, so it is 0 iff in some component
// the rows where none of the tuple's dep-owned slots are ⊥ carry zero
// mass. Indexed for the common case: only owners with ⊥ somewhere can
// kill; single-owner-per-component deaths are precomputed, joint deaths
// (several dep owners sharing one component) are checked exactly but only
// for the rare tuples where that can occur.
size_t RemoveDeadTuples(WsdDb* db) {
  std::unordered_set<OwnerId> dead_owners;
  // owner -> components where the owner has a ⊥ slot (but is not
  // single-handedly dead there).
  std::unordered_map<OwnerId, std::vector<ComponentId>> bottom_comps;
  for (ComponentId id : db->LiveComponents()) {
    const Component& c = db->component(id);
    std::unordered_map<OwnerId, std::vector<uint32_t>> by_owner;
    for (uint32_t s = 0; s < c.NumSlots(); ++s) {
      by_owner[c.slot(s).owner].push_back(s);
    }
    for (const auto& [owner, slots] : by_owner) {
      bool has_bottom = false;
      double alive = 0.0;
      for (size_t r = 0; r < c.NumRows(); ++r) {
        bool ok = true;
        for (uint32_t s : slots) {
          if (c.IsBottomAt(r, s)) {
            ok = false;
            has_bottom = true;
            break;
          }
        }
        if (ok) alive += c.prob(r);
      }
      if (has_bottom) {
        if (alive <= 0.0) {
          dead_owners.insert(owner);
        } else {
          bottom_comps[owner].push_back(id);
        }
      }
    }
  }
  if (dead_owners.empty() && bottom_comps.empty()) return 0;

  size_t removed = 0;
  std::unordered_map<ComponentId, size_t> comp_hits;
  for (auto& [key, rel] : db->mutable_relations()) {
    auto& tuples = rel.mutable_tuples();
    size_t kept = 0;
    for (size_t i = 0; i < tuples.size(); ++i) {
      const WsdTuple& t = tuples[i];
      bool dead = false;
      for (OwnerId o : t.deps) {
        if (dead_owners.count(o)) {
          dead = true;
          break;
        }
      }
      // Joint death: two or more dep owners with ⊥ in the same component
      // may leave no jointly-alive row even though each survives alone.
      if (!dead && t.deps.size() > 1) {
        comp_hits.clear();
        for (OwnerId o : t.deps) {
          auto it = bottom_comps.find(o);
          if (it == bottom_comps.end()) continue;
          for (ComponentId cid : it->second) comp_hits[cid]++;
        }
        for (const auto& [cid, hits] : comp_hits) {
          if (hits < 2) continue;
          const Component& c = db->component(cid);
          double alive = 0.0;
          for (size_t r = 0; r < c.NumRows(); ++r) {
            bool ok = true;
            for (uint32_t s = 0; s < c.NumSlots(); ++s) {
              if (c.IsBottomAt(r, s) &&
                  std::binary_search(t.deps.begin(), t.deps.end(),
                                     c.slot(s).owner)) {
                ok = false;
                break;
              }
            }
            if (ok) alive += c.prob(r);
          }
          if (alive <= 0.0) {
            dead = true;
            break;
          }
        }
      }
      if (!dead) {
        if (kept != i) tuples[kept] = std::move(tuples[i]);
        ++kept;
      } else {
        ++removed;
      }
    }
    tuples.resize(kept);
  }
  return removed;
}

// Step 3: garbage-collect slots. Unreferenced slots that never carry ⊥ or
// whose owner gates no tuple are dropped (marginalized); unreferenced
// slots that do carry ⊥ for a live owner collapse into existence slots.
// Duplicate existence slots of the same owner within a component merge.
// All slot renumberings are applied to the templates in ONE final pass.
void GcSlots(WsdDb* db, const RefIndex& idx, NormalizeStats* stats) {
  std::unordered_map<ComponentId, std::vector<uint32_t>> remaps;
  for (ComponentId id : db->LiveComponents()) {
    Component& c = db->mutable_component(id);
    std::vector<uint32_t> to_drop;
    // owner -> first existence slot index seen
    std::unordered_map<OwnerId, uint32_t> exist_slot;
    for (uint32_t s = 0; s < c.NumSlots(); ++s) {
      bool referenced = idx.slot_refs.count(RefIndex::Key(id, s)) > 0;
      if (referenced) continue;
      OwnerId owner = c.slot(s).owner;
      bool owner_live = idx.live_owners.count(owner) > 0;
      bool has_bottom = false;
      for (const PackedValue& v : c.column(s)) {
        if (v.is_bottom()) {
          has_bottom = true;
          break;
        }
      }
      if (!owner_live || !has_bottom) {
        to_drop.push_back(s);
        stats->slots_dropped++;
        continue;
      }
      // Collapse to an existence slot.
      auto it = exist_slot.find(owner);
      if (it == exist_slot.end()) {
        exist_slot[owner] = s;
        bool was_data = false;
        const PackedValue token = PackedExistsToken();
        for (size_t r = 0; r < c.NumRows(); ++r) {
          const PackedValue& v = c.packed(r, s);
          if (!v.is_bottom()) {
            if (!(v == token)) was_data = true;
            c.SetPacked(r, s, token);
          }
        }
        if (was_data) {
          c.mutable_slot(s).label = "\xE2\x88\x83" + std::to_string(owner);
          stats->slots_collapsed++;
        }
      } else {
        // AND into the canonical existence slot, then drop this one.
        uint32_t keep = it->second;
        for (size_t r = 0; r < c.NumRows(); ++r) {
          if (c.IsBottomAt(r, s)) {
            c.SetPacked(r, keep, PackedValue::Bottom());
          }
        }
        to_drop.push_back(s);
        stats->slots_dropped++;
      }
    }
    if (!to_drop.empty()) {
      std::vector<uint32_t> remap(c.NumSlots());
      std::vector<bool> dropped(c.NumSlots(), false);
      for (uint32_t s : to_drop) dropped[s] = true;
      uint32_t next = 0;
      for (uint32_t s = 0; s < c.NumSlots(); ++s) {
        remap[s] = next;
        if (!dropped[s]) ++next;
      }
      c.DropSlots(to_drop);
      remaps.emplace(id, std::move(remap));
    }
    if (c.NumSlots() == 0) {
      db->RemoveComponent(id);
      stats->components_dropped++;
      remaps.erase(id);
    }
  }
  if (!remaps.empty()) {
    for (auto& [key, rel] : db->mutable_relations()) {
      for (auto& t : rel.mutable_tuples()) {
        for (auto& cell : t.cells) {
          if (!cell.is_ref()) continue;
          auto it = remaps.find(cell.ref().cid);
          if (it != remaps.end()) {
            cell.mutable_ref().slot = it->second[cell.ref().slot];
          }
        }
      }
    }
  }
}

// Step 4: merge identical rows within each component.
size_t DedupRows(WsdDb* db) {
  size_t merged = 0;
  for (ComponentId id : db->LiveComponents()) {
    Component& c = db->mutable_component(id);
    size_t before = c.NumRows();
    c.DedupRows();
    merged += before - c.NumRows();
  }
  return merged;
}

// Step 5: inline slots whose value is the same (non-⊥) in every row.
// Constant-slot detection runs per component; the inlining itself is one
// pass over all templates.
size_t InlineCertain(WsdDb* db, NormalizeStats* stats) {
  // cid -> (constant flags, constant values)
  std::unordered_map<ComponentId,
                     std::pair<std::vector<bool>, std::vector<Value>>>
      constants;
  for (ComponentId id : db->LiveComponents()) {
    Component& c = db->mutable_component(id);
    if (c.NumRows() == 0) continue;
    std::vector<bool> is_constant(c.NumSlots(), false);
    std::vector<Value> constant_of(c.NumSlots());
    bool any = false;
    for (uint32_t s = 0; s < c.NumSlots(); ++s) {
      const std::vector<PackedValue>& col = c.column(s);
      const PackedValue& first = col[0];
      if (first.is_bottom()) continue;
      bool constant = true;
      for (size_t r = 1; r < col.size(); ++r) {
        if (!(col[r] == first)) {
          constant = false;
          break;
        }
      }
      if (constant) {
        is_constant[s] = true;
        constant_of[s] = first.ToValue();
        any = true;
      }
    }
    if (any) {
      constants.emplace(
          id, std::make_pair(std::move(is_constant), std::move(constant_of)));
    }
  }
  if (constants.empty()) return 0;
  // Inline into referencing cells; unreferenced constant slots are
  // handled by GC in the next iteration.
  size_t inlined_cells = 0;
  for (auto& [key, rel] : db->mutable_relations()) {
    for (auto& t : rel.mutable_tuples()) {
      for (auto& cell : t.cells) {
        if (!cell.is_ref()) continue;
        auto it = constants.find(cell.ref().cid);
        if (it != constants.end() && it->second.first[cell.ref().slot]) {
          cell = Cell::Certain(it->second.second[cell.ref().slot]);
          ++inlined_cells;
        }
      }
    }
  }
  stats->cells_inlined += inlined_cells;
  return inlined_cells;
}

}  // namespace

Result<NormalizeStats> Normalize(WsdDb* db, const NormalizeOptions& options) {
  NormalizeStats stats;
  bool changed = true;
  // Each iteration strictly shrinks the representation (slots, rows,
  // tuples, or refs), so this terminates; the cap is a safety net.
  constexpr size_t kMaxIterations = 64;
  while (changed && stats.iterations < kMaxIterations) {
    changed = false;
    ++stats.iterations;
    if (options.propagate_bottom) {
      changed |= PropagateBottom(db);
    }
    if (options.remove_dead_tuples) {
      size_t removed = RemoveDeadTuples(db);
      stats.tuples_removed += removed;
      changed |= removed > 0;
    }
    if (options.gc_slots) {
      RefIndex idx = BuildRefIndex(*db);
      size_t before_drop = stats.slots_dropped + stats.components_dropped;
      GcSlots(db, idx, &stats);
      changed |=
          (stats.slots_dropped + stats.components_dropped) != before_drop;
    }
    if (options.dedup_rows) {
      size_t merged = DedupRows(db);
      stats.rows_merged += merged;
      changed |= merged > 0;
    }
    if (options.inline_certain) {
      changed |= InlineCertain(db, &stats) > 0;
    }
  }
  if (stats.iterations >= kMaxIterations) {
    return Status::Internal("normalization did not reach fixpoint");
  }
  return stats;
}

}  // namespace maybms
