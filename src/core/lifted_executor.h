// Evaluates a logical plan over a world-set decomposition: the lifted
// counterpart of ra/executor.h, implementing the paper's "rewrite user
// queries into a sequence of relational queries on WSDs".
#ifndef MAYBMS_CORE_LIFTED_EXECUTOR_H_
#define MAYBMS_CORE_LIFTED_EXECUTOR_H_

#include <string>

#include "common/result.h"
#include "core/wsd.h"
#include "ra/expr_compile.h"
#include "ra/plan.h"

namespace maybms {

struct LiftedExecOptions {
  /// Name of the result relation in the returned database.
  std::string result_name = "result";
  /// Run factorization after the final normalization (re-splits merged
  /// components when they decompose).
  bool factorize_result = false;
  /// Expression-evaluation knobs (compiled vectorized programs vs the
  /// row-at-a-time interpreter, batch parallelism) forwarded to every
  /// lifted operator.
  ExecOptions eval;
};

/// Evaluates `plan` over `input`, returning a new world-set database that
/// contains exactly one relation (options.result_name) — the query answer
/// in every world — plus the components it references.
///
/// Semantics: for every world w of `input` with probability p, the result
/// represents the world "plan evaluated on w" with probability p.
/// Supported nodes: Scan, Select, Project, Product, Join, Union,
/// Difference, Distinct, and Sort over certain columns. Limit and
/// Aggregate return kUnsupported (the SQL layer lowers aggregates to
/// confidence computation instead).
Result<WsdDb> ExecuteLifted(const PlanPtr& plan, const WsdDb& input,
                            const LiftedExecOptions& options = {});

}  // namespace maybms

#endif  // MAYBMS_CORE_LIFTED_EXECUTOR_H_
