#include "core/lifted_executor.h"

#include <map>
#include <unordered_map>

#include "common/string_util.h"
#include "core/factorize.h"
#include "core/lifted.h"
#include "core/normalize.h"

namespace maybms {

namespace {

// Counts how many times each base relation is scanned.
void CountScans(const PlanPtr& plan,
                std::map<std::string, size_t>* counts) {
  if (plan->kind() == PlanKind::kScan) {
    (*counts)[ToLower(plan->relation())]++;
  }
  for (const auto& c : plan->children()) CountScans(c, counts);
}

class LiftedRunner {
 public:
  LiftedRunner(WsdDb* db, const ExecOptions& eval_opts)
      : db_(db), eval_opts_(eval_opts) {}

  // Pre-instantiates `count` independent scan copies of each base
  // relation, then drops every base relation so that ownership statistics
  // reflect only the working copies.
  Status PrepareScans(const std::map<std::string, size_t>& counts) {
    for (const auto& [name, count] : counts) {
      MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* rel, db_->GetRelation(name));
      std::string display = rel->display_name();
      // Copies beyond the first share slots and owners deliberately:
      // multiple scans of one relation are correlated (self-join
      // semantics). The last "copy" moves the base relation instead, so a
      // single scan costs no duplication.
      for (size_t i = 1; i < count; ++i) {
        std::string copy = StrFormat("__scan_%s_%zu", name.c_str(), i);
        MAYBMS_RETURN_IF_ERROR(db_->CreateRelation(copy, rel->schema()));
        WsdRelation* dst = db_->GetMutableRelation(copy).value();
        const WsdRelation* src = db_->GetRelation(name).value();
        *dst = *src;
        dst->set_name(copy);
        dst->set_display_name(display);
        scan_queue_[name].push_back(copy);
      }
      std::string moved = StrFormat("__scan_%s_0", name.c_str());
      MAYBMS_RETURN_IF_ERROR(RenameRelation(db_, name, moved));
      db_->GetMutableRelation(moved).value()->set_display_name(display);
      scan_queue_[name].push_back(moved);
    }
    for (const auto& name : db_->RelationNames()) {
      if (!StartsWith(name, "__scan_")) {
        MAYBMS_RETURN_IF_ERROR(db_->DropRelation(name));
      }
    }
    return Status::OK();
  }

  Result<std::string> Run(const PlanPtr& plan) {
    switch (plan->kind()) {
      case PlanKind::kScan: {
        auto& queue = scan_queue_[ToLower(plan->relation())];
        if (queue.empty()) {
          return Status::Internal("scan copy exhausted for " +
                                  plan->relation());
        }
        std::string name = queue.back();
        queue.pop_back();
        return name;
      }
      case PlanKind::kSelect: {
        MAYBMS_ASSIGN_OR_RETURN(std::string in, Run(plan->input()));
        std::string out = NextTemp();
        MAYBMS_RETURN_IF_ERROR(
            LiftedSelect(db_, in, plan->predicate(), out, eval_opts_));
        return out;
      }
      case PlanKind::kProject: {
        MAYBMS_ASSIGN_OR_RETURN(std::string in, Run(plan->input()));
        std::string out = NextTemp();
        MAYBMS_RETURN_IF_ERROR(
            LiftedProject(db_, in, plan->project_items(), out, eval_opts_));
        return out;
      }
      case PlanKind::kProduct: {
        MAYBMS_ASSIGN_OR_RETURN(std::string l, Run(plan->left()));
        MAYBMS_ASSIGN_OR_RETURN(std::string r, Run(plan->right()));
        std::string out = NextTemp();
        MAYBMS_RETURN_IF_ERROR(LiftedProduct(db_, l, r, out));
        return out;
      }
      case PlanKind::kJoin: {
        MAYBMS_ASSIGN_OR_RETURN(std::string l, Run(plan->left()));
        MAYBMS_ASSIGN_OR_RETURN(std::string r, Run(plan->right()));
        std::string out = NextTemp();
        MAYBMS_RETURN_IF_ERROR(
            LiftedJoin(db_, l, r, plan->predicate(), out, eval_opts_));
        return out;
      }
      case PlanKind::kUnion: {
        MAYBMS_ASSIGN_OR_RETURN(std::string l, Run(plan->left()));
        MAYBMS_ASSIGN_OR_RETURN(std::string r, Run(plan->right()));
        std::string out = NextTemp();
        MAYBMS_RETURN_IF_ERROR(LiftedUnion(db_, l, r, out));
        return out;
      }
      case PlanKind::kDifference: {
        MAYBMS_ASSIGN_OR_RETURN(std::string l, Run(plan->left()));
        MAYBMS_ASSIGN_OR_RETURN(std::string r, Run(plan->right()));
        std::string out = NextTemp();
        MAYBMS_RETURN_IF_ERROR(LiftedDifference(db_, l, r, out));
        return out;
      }
      case PlanKind::kDistinct: {
        MAYBMS_ASSIGN_OR_RETURN(std::string in, Run(plan->input()));
        std::string out = NextTemp();
        MAYBMS_RETURN_IF_ERROR(LiftedDistinct(db_, in, out));
        return out;
      }
      case PlanKind::kSort: {
        MAYBMS_ASSIGN_OR_RETURN(std::string in, Run(plan->input()));
        MAYBMS_RETURN_IF_ERROR(SortCertain(in, plan));
        return in;
      }
      case PlanKind::kLimit:
        return Status::Unsupported(
            "LIMIT over world-sets is not defined (per-world cardinality "
            "varies)");
      case PlanKind::kAggregate:
        return Status::Unsupported(
            "aggregates over world-sets are lowered to confidence "
            "computation by the SQL layer");
    }
    return Status::Internal("unreachable plan kind");
  }

 private:
  std::string NextTemp() { return StrFormat("__t%zu", temp_counter_++); }

  // Sorts template order by certain sort columns; the template order is
  // the presentation order in every world, so this is only defined when
  // the sort keys are world-independent.
  Status SortCertain(const std::string& name, const PlanPtr& plan) {
    MAYBMS_ASSIGN_OR_RETURN(WsdRelation * rel, db_->GetMutableRelation(name));
    std::vector<size_t> idxs;
    for (const auto& col : plan->sort_columns()) {
      MAYBMS_ASSIGN_OR_RETURN(size_t i, rel->schema().Resolve(col));
      idxs.push_back(i);
    }
    for (const auto& t : rel->tuples()) {
      for (size_t i : idxs) {
        if (!t.cells[i].is_certain()) {
          return Status::Unsupported(
              "ORDER BY over uncertain attribute " +
              rel->schema().attr(i).name);
        }
      }
    }
    const auto& desc = plan->sort_descending();
    std::stable_sort(rel->mutable_tuples().begin(),
                     rel->mutable_tuples().end(),
                     [&](const WsdTuple& a, const WsdTuple& b) {
                       for (size_t k = 0; k < idxs.size(); ++k) {
                         int c = a.cells[idxs[k]].value().Compare(
                             b.cells[idxs[k]].value());
                         if (k < desc.size() && desc[k]) c = -c;
                         if (c != 0) return c < 0;
                       }
                       return false;
                     });
    return Status::OK();
  }

  WsdDb* db_;
  ExecOptions eval_opts_;
  std::map<std::string, std::vector<std::string>> scan_queue_;
  size_t temp_counter_ = 0;
};

}  // namespace

Result<WsdDb> ExecuteLifted(const PlanPtr& plan, const WsdDb& input,
                            const LiftedExecOptions& options) {
  WsdDb working = input;  // deep copy; the input stays immutable
  std::map<std::string, size_t> counts;
  CountScans(plan, &counts);
  LiftedRunner runner(&working, options.eval);
  MAYBMS_RETURN_IF_ERROR(runner.PrepareScans(counts));
  // Normalize once: dropping unscanned base relations frees components.
  MAYBMS_ASSIGN_OR_RETURN(NormalizeStats st0, Normalize(&working));
  (void)st0;
  MAYBMS_ASSIGN_OR_RETURN(std::string result, runner.Run(plan));
  // Drop any leftover scan copies (plans that do not consume every copy
  // cannot occur today, but stay defensive).
  for (const auto& name : working.RelationNames()) {
    if (name != ToLower(result) && !EqualsIgnoreCase(name, result)) {
      MAYBMS_RETURN_IF_ERROR(working.DropRelation(name));
    }
  }
  MAYBMS_RETURN_IF_ERROR(RenameRelation(&working, result,
                                        options.result_name));
  MAYBMS_ASSIGN_OR_RETURN(NormalizeStats st1, Normalize(&working));
  (void)st1;
  if (options.factorize_result) {
    MAYBMS_ASSIGN_OR_RETURN(FactorizeStats fs, Factorize(&working));
    (void)fs;
  }
  return working;
}

}  // namespace maybms
