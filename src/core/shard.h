// Horizontal shards of a template relation: contiguous row ranges with
// per-column ranges over the *possible* values of every tuple in the
// range (certain cells plus all non-⊥ alternatives of referenced
// component slots) and the set of components the range references.
//
// The ranges power shard pruning: when a conjunctive predicate bounds a
// column to an interval disjoint from a shard's possible-value range,
// no tuple of that shard can satisfy the predicate in *any* world, so
// the whole shard can be skipped — by the optimizer for cardinality
// estimates and EXPLAIN, and by the mapped snapshot loader to avoid
// materializing the shard at all (the per-shard stats are persisted in
// the v3 snapshot's SDIR section; see docs/SNAPSHOT_FORMAT.md).
#ifndef MAYBMS_CORE_SHARD_H_
#define MAYBMS_CORE_SHARD_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "core/types.h"
#include "core/wsd.h"
#include "ra/expr.h"

namespace maybms {

/// Range over the possible numeric values of one column within a shard.
///
/// `valid` is false when the column's possible values include anything
/// non-numeric (string, bool, NULL) — such a column can never prune.
/// A valid range with lo > hi means "no possible value at all" (every
/// tuple in the shard is dead on this column in every world); it is
/// disjoint from every bound.
struct ShardColumnRange {
  bool valid = false;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
};

/// One horizontal shard: template rows [row_begin, row_end).
struct ShardInfo {
  size_t row_begin = 0;
  size_t row_end = 0;
  /// Per schema column, aligned with the relation's schema.
  std::vector<ShardColumnRange> ranges;
  /// Sorted, deduplicated ids of every component referenced by a cell or
  /// gating a dep of any tuple in the range (the components a mapped
  /// loader must materialize alongside the shard).
  std::vector<ComponentId> ref_components;
};

/// A relation partitioned into fixed-size horizontal shards.
struct ShardPartition {
  size_t rows_per_shard = 0;
  std::vector<ShardInfo> shards;
};

/// Conjunctive per-column interval extracted from a predicate. Bounds
/// are closed and conservative: `col < 10` records hi = 10, which keeps
/// slightly more shards than strictly needed but never prunes wrongly.
struct ColumnBound {
  bool active = false;  ///< at least one conjunct constrains this column
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
};

/// Partitions `rel` into shards of `rows_per_shard` rows (the last shard
/// may be short) and computes per-shard column ranges and referenced
/// components. rows_per_shard == 0 is treated as one shard for all rows.
ShardPartition ComputeShardPartition(const WsdDb& db, const WsdRelation& rel,
                                     size_t rows_per_shard);

/// Cached variant: computes on first call with the database's configured
/// options().rows_per_shard and memoizes the partition on the relation.
/// Safe under concurrent readers: the cache is published with an atomic
/// compare-and-swap, so racing callers agree on one partition object.
/// Mutators invalidate it (component edits included), like GetStats().
const ShardPartition& GetShardPartition(const WsdDb& db,
                                        const WsdRelation& rel);

/// Extracts conservative per-column numeric bounds from the top-level
/// AND-conjuncts of a bound predicate (Compare against numeric literals
/// and IN over numeric literal lists). Columns not constrained stay
/// inactive. Never wrong, often inactive: anything it cannot prove is
/// simply not recorded.
std::vector<ColumnBound> ExtractColumnBounds(const Expr& pred,
                                             size_t num_cols);

/// True when the shard may contain a satisfying tuple in some world
/// (i.e. must be kept); false when every column bound is provably
/// disjoint from the shard's possible values.
bool ShardMayMatch(const ShardInfo& shard,
                   const std::vector<ColumnBound>& bounds);

/// Keep-mask over `partition.shards` under `bounds`.
std::vector<char> PruneShards(const ShardPartition& partition,
                              const std::vector<ColumnBound>& bounds);

}  // namespace maybms

#endif  // MAYBMS_CORE_SHARD_H_
