#include "core/repair.h"

#include <cmath>
#include <unordered_map>

#include "common/hash.h"
#include "common/string_util.h"
#include "core/normalize.h"

namespace maybms {

Result<RepairKeyStats> RepairKey(WsdDb* db, const std::string& relation,
                                 const std::vector<std::string>& key_attrs,
                                 const std::string& weight_attr) {
  MAYBMS_ASSIGN_OR_RETURN(WsdRelation * rel, db->GetMutableRelation(relation));
  if (key_attrs.empty()) {
    return Status::InvalidArgument("REPAIR KEY needs at least one attribute");
  }
  std::vector<size_t> key_cols;
  for (const auto& a : key_attrs) {
    MAYBMS_ASSIGN_OR_RETURN(size_t i, rel->schema().Resolve(a));
    key_cols.push_back(i);
  }
  std::optional<size_t> weight_col;
  if (!weight_attr.empty()) {
    MAYBMS_ASSIGN_OR_RETURN(size_t i, rel->schema().Resolve(weight_attr));
    weight_col = i;
  }

  RepairKeyStats stats;
  stats.tuples = rel->NumTuples();

  // Group by certain key values.
  struct Group {
    std::vector<size_t> members;
    std::vector<double> weights;
    double total = 0.0;
  };
  std::unordered_map<size_t, std::vector<std::pair<Tuple, Group>>> groups;
  for (size_t i = 0; i < rel->NumTuples(); ++i) {
    const WsdTuple& t = rel->tuple(i);
    Tuple key;
    key.reserve(key_cols.size());
    for (size_t c : key_cols) {
      const Cell& cell = t.cells[c];
      if (!cell.is_certain()) {
        return Status::Unsupported(
            StrFormat("REPAIR KEY requires certain key values (tuple %zu, "
                      "attribute %s is uncertain)",
                      i, rel->schema().attr(c).name.c_str()));
      }
      key.push_back(cell.value());
    }
    double w = 1.0;
    if (weight_col) {
      const Cell& cell = t.cells[*weight_col];
      if (!cell.is_certain()) {
        return Status::Unsupported("REPAIR KEY weight must be certain");
      }
      const Value& v = cell.value();
      if (!v.is_numeric()) {
        return Status::TypeMismatch("REPAIR KEY weight must be numeric");
      }
      w = v.NumericValue();
      if (w < 0.0 || !std::isfinite(w)) {
        return Status::OutOfRange(
            StrFormat("REPAIR KEY weight %g out of range", w));
      }
    }
    size_t h = TupleHash(key);
    auto& bucket = groups[h];
    Group* g = nullptr;
    for (auto& [k, cand] : bucket) {
      if (TupleCompare(k, key) == 0) {
        g = &cand;
        break;
      }
    }
    if (!g) {
      bucket.emplace_back(std::move(key), Group{});
      g = &bucket.back().second;
    }
    g->members.push_back(i);
    g->weights.push_back(w);
    g->total += w;
  }

  // Build one component per conflicting group: row r chooses member r
  // (its existence slot is the exists token, all others ⊥).
  std::vector<bool> drop(rel->NumTuples(), false);
  for (auto& [h, bucket] : groups) {
    for (auto& [key, g] : bucket) {
      stats.groups++;
      if (g.members.size() < 2) continue;
      if (g.total <= 0.0) {
        return Status::Inconsistent(
            "REPAIR KEY group with zero total weight: " +
            (key.empty() ? "()" : key[0].ToString()));
      }
      // Weight-0 members can never be chosen; drop them outright.
      std::vector<size_t> members;
      std::vector<double> probs;
      for (size_t k = 0; k < g.members.size(); ++k) {
        if (g.weights[k] > 0.0) {
          members.push_back(g.members[k]);
          probs.push_back(g.weights[k] / g.total);
        } else {
          drop[g.members[k]] = true;
        }
      }
      if (members.size() < 2) continue;  // at most one survivor possible
      stats.conflicting_groups++;
      stats.log2_worlds_added += std::log2(static_cast<double>(members.size()));

      Component c;
      std::vector<OwnerId> owners;
      owners.reserve(members.size());
      for (size_t k = 0; k < members.size(); ++k) {
        OwnerId o = db->NextOwner();
        owners.push_back(o);
        c.AddSlot({o, StrFormat("repair[%zu]", members[k])}, Value::Null());
      }
      for (size_t r = 0; r < members.size(); ++r) {
        ComponentRow row;
        row.values.assign(members.size(), Value::Bottom());
        row.values[r] = ExistsToken();
        row.prob = probs[r];
        MAYBMS_RETURN_IF_ERROR(c.AddRow(std::move(row)));
      }
      ComponentId cid = db->AddComponent(std::move(c));
      (void)cid;
      for (size_t k = 0; k < members.size(); ++k) {
        rel->mutable_tuple(members[k]).AddDep(owners[k]);
      }
    }
  }
  // Remove weight-0 tuples.
  auto& tuples = rel->mutable_tuples();
  size_t kept = 0;
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (!drop[i]) {
      if (kept != i) tuples[kept] = std::move(tuples[i]);
      ++kept;
    }
  }
  tuples.resize(kept);
  MAYBMS_ASSIGN_OR_RETURN(NormalizeStats ns, Normalize(db));
  (void)ns;
  return stats;
}

}  // namespace maybms
