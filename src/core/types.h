// Core identifier types of the world-set decomposition representation.
#ifndef MAYBMS_CORE_TYPES_H_
#define MAYBMS_CORE_TYPES_H_

#include <cstdint>
#include <limits>

namespace maybms {

/// Identifies a component within a WsdDb's component store.
using ComponentId = uint32_t;

/// Identifies the *owner* of component slots: every slot belongs to an
/// owner, and a template tuple exists in a world iff, for every owner in
/// its dependency set, all slots of that owner are non-⊥ in the world.
///
/// Base tuples own the slots storing their uncertain fields. Derived
/// tuples (join results, deduplicated tuples) acquire additional owners
/// whose "existence slots" encode the worlds in which the derived tuple
/// survives.
using OwnerId = uint64_t;

inline constexpr ComponentId kInvalidComponent =
    std::numeric_limits<ComponentId>::max();

/// Reference from a template cell into a component slot.
struct FieldRef {
  ComponentId cid = kInvalidComponent;
  uint32_t slot = 0;

  bool operator==(const FieldRef& other) const {
    return cid == other.cid && slot == other.slot;
  }
};

}  // namespace maybms

#endif  // MAYBMS_CORE_TYPES_H_
