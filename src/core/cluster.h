// Shared cluster-decomposition subsystem behind the probabilistic
// aggregates (conf()/prob(), possible/certain answers, ECOUNT/ESUM).
//
// Every probability construct of the query language reduces to the same
// three steps:
//
//  1. *Resolution* — determine which components a template tuple touches:
//     the components behind its value references plus, via an
//     owner→component index, every component holding a slot owned by one
//     of the tuple's existence deps.
//  2. *Clustering* — union tuples that share components into independence
//     clusters (tuples in different clusters depend on disjoint component
//     sets, hence are independent).
//  3. *Enumeration* — walk each cluster's joint states with a budgeted
//     odometer; across clusters, absence probabilities multiply
//     (conf(v) = 1 − Π_clusters (1 − P_cluster(v))).
//
// Before clustering, every touched component is *locally factorized*
// with the exact independence test of factorize.cc: when a component's
// joint distribution is a product over disjoint slot groups, this index
// replaces it — internally only; the database is never modified — by the
// per-group projections ("factors"). Tuples then touch factors instead
// of whole components, clusters get finer, and the enumerated state
// space drops from Π(component rows) to a sum over finer clusters of
// Π(factor rows) — the succinctness argument of the follow-up WSD papers
// ("10^(10^6) Worlds and Beyond") applied to query evaluation.
//
// Clusters share no mutable state and only read the (const, thread-safe)
// WsdDb, so callers evaluate them concurrently via common/parallel.h.
#ifndef MAYBMS_CORE_CLUSTER_H_
#define MAYBMS_CORE_CLUSTER_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/factorize.h"
#include "core/wsd.h"

namespace maybms {

/// Identifies a factor within one ClusterIndex (dense, index-local).
using FactorId = uint32_t;

/// One enumerable unit: a live component of the database, or — after
/// local factorization — its projection onto one independent slot group.
struct Factor {
  ComponentId source = kInvalidComponent;  ///< component it came from
  std::vector<uint32_t> slots;  ///< covered source slots, ascending
  const Component* comp = nullptr;  ///< rows enumerated (db- or index-owned)
  bool projected = false;  ///< comp is an index-owned projection

  /// Whole-component factor aliasing the database's storage?
  bool whole() const { return !projected; }
};

/// One independence cluster of a template relation.
struct Cluster {
  std::vector<FactorId> factors;   ///< sorted, unique
  std::vector<size_t> tuple_idxs;  ///< member tuples (relation indexes)
};

struct ClusterIndexOptions {
  /// Locally factorize touched components before clustering. Turning
  /// this off reproduces whole-component clustering (used by the
  /// differential tests and as a naive baseline in benchmarks).
  bool factorize = true;
  /// Build the relation-wide clusters (step 5). Per-tuple-term
  /// aggregates (ESUM) only need resolution + factorization and skip
  /// the union-find/cluster assembly by turning this off; clusters()
  /// and certain_tuples() stay empty then.
  bool build_clusters = true;
  /// Restrict value-reference resolution to this column: components
  /// referenced only by other columns are neither indexed nor
  /// factorized (dep-gating components always are). Requires
  /// build_clusters == false, and Touched() must then be called with
  /// the same column.
  std::optional<size_t> only_col;
  /// Tolerances of the exact factorization test.
  FactorizeOptions factorize_options;
};

/// Owner→component resolution, local factorization, and union-find
/// clustering for one template relation. Immutable after construction;
/// safe to share across threads.
class ClusterIndex {
 public:
  /// Builds the index: owner→component map over `db`, local factorization
  /// of every component touched by `rel`, per-tuple factor resolution,
  /// and clustering. `db` and `rel` must outlive the index.
  ClusterIndex(const WsdDb& db, const WsdRelation& rel,
               const ClusterIndexOptions& options = {});

  ClusterIndex(const ClusterIndex&) = delete;
  ClusterIndex& operator=(const ClusterIndex&) = delete;

  const WsdDb& db() const { return *db_; }
  const WsdRelation& rel() const { return *rel_; }

  size_t NumFactors() const { return factors_.size(); }
  const Factor& factor(FactorId f) const { return factors_[f]; }

  /// The independence clusters of the relation (tuples touching at least
  /// one component), in deterministic order.
  const std::vector<Cluster>& clusters() const { return clusters_; }

  /// Tuples touching no component: present in every world.
  const std::vector<size_t>& certain_tuples() const { return certain_tuples_; }

  /// (factor, local slot) behind a template cell reference. The referenced
  /// component must be touched by the relation this index was built for.
  std::pair<FactorId, uint32_t> Resolve(const FieldRef& ref) const;

  /// Factors holding a slot owned by `o`; nullptr when none.
  const std::vector<FactorId>* OwnerFactors(OwnerId o) const;

  /// Touched factors of `t` (a tuple of the indexed relation), sorted
  /// unique: the factors behind its ref cells — all cells, or just
  /// `only_col` when given (ESUM resolves one term per tuple) — plus
  /// every factor gating one of its deps owners.
  std::vector<FactorId> Touched(
      const WsdTuple& t, std::optional<size_t> only_col = std::nullopt) const;

  /// Content key of one cluster, for the materialized-confidence cache
  /// (core/materialized_conf.h): a 64-bit hash over everything the
  /// cluster's exact scan result is a function of — the source
  /// components' ContentHash()es in ascending-cid order (factorization
  /// is deterministic from content, so factor structure is covered),
  /// each member tuple's cells (certain values by content, refs as
  /// source-position + source slot) and deps owners, and the relation
  /// arity. `salt` distinguishes caller namespaces and option
  /// fingerprints. Two clusters with equal keys run the identical
  /// float-op sequence and produce bit-identical mass maps; a delta
  /// that dirties any touched component changes the key, so stale
  /// entries are never hit (they just age out of the cache). Never 0.
  uint64_t ClusterKey(const Cluster& cluster, uint64_t salt) const;

  /// Content key of a single tuple's aggregate term (the ESUM path,
  /// which touches Touched(t, only_col) factors instead of a cluster).
  /// Same construction and guarantees as ClusterKey.
  uint64_t TupleTermKey(const WsdTuple& t, std::optional<size_t> only_col,
                        uint64_t salt) const;

 private:
  const WsdDb* db_;
  const WsdRelation* rel_;
  std::deque<Component> owned_;  ///< projected factor components (stable)
  std::vector<Factor> factors_;
  /// component id -> per-source-slot (factor, local slot)
  std::unordered_map<ComponentId, std::vector<std::pair<FactorId, uint32_t>>>
      slot_map_;
  std::unordered_map<OwnerId, std::vector<FactorId>> owner_factors_;
  std::vector<Cluster> clusters_;
  std::vector<size_t> certain_tuples_;
};

/// Budgeted odometer over the joint states of a factor set, with gating
/// (existence) checks and cell resolution under the current state.
/// Typical drive:
///
///   ClusterEnumerator en(index, cluster.factors);
///   MAYBMS_RETURN_IF_ERROR(en.CheckBudget(budget, "conf").status());
///   auto gating = en.GatingFor(t.deps);
///   for (en.Reset(); !en.Done(); en.Advance()) {
///     double p = en.StateProb();
///     if (p <= 0.0 || !en.Alive(gating)) continue;
///     ...en.PackedAt(pos, slot)...
///   }
class ClusterEnumerator {
 public:
  ClusterEnumerator(const ClusterIndex& index, std::vector<FactorId> factors);

  size_t NumFactors() const { return comps_.size(); }

  /// Π of factor row counts; ResourceExhausted when it exceeds `budget`
  /// (`what` names the caller in the message), Inconsistent on an empty
  /// factor.
  Result<size_t> CheckBudget(size_t budget, const char* what) const;

  /// Gating slots per factor, aligned with the factor list, for a sorted
  /// deps vector: the local slots whose owner appears in `deps`.
  std::vector<std::vector<uint32_t>> GatingFor(
      const std::vector<OwnerId>& deps) const;

  /// Position of factor f in this enumerator's factor list (pre: present).
  uint32_t PosOf(FactorId f) const;

  /// (factor position, local slot) for a template cell reference —
  /// resolve once per tuple, then read with PackedAt per state.
  std::pair<uint32_t, uint32_t> ResolveAt(const FieldRef& ref) const;

  // --- state iteration ----------------------------------------------------
  void Reset();
  bool Done() const { return done_; }
  void Advance();

  /// Probability of the current joint state (product of chosen rows).
  double StateProb() const;

  /// Are all gating slots non-⊥ in the current state?
  bool Alive(const std::vector<std::vector<uint32_t>>& gating) const;

  /// Packed cell of factor position `pos`, local slot `slot`, under the
  /// current state.
  const PackedValue& PackedAt(uint32_t pos, uint32_t slot) const {
    return comps_[pos]->packed(choice_[pos], slot);
  }

  /// The component enumerated at factor position `pos`.
  const Component* component(uint32_t pos) const { return comps_[pos]; }

  /// Row currently chosen at factor position `pos`.
  size_t ChoiceAt(uint32_t pos) const { return choice_[pos]; }

  /// Sets the joint state directly instead of odometer-stepping to it —
  /// sampling drivers draw one row per factor and then read the state
  /// through StateProb/Alive/PackedAt as usual.
  void SetChoice(uint32_t pos, size_t row) {
    choice_[pos] = row;
    done_ = false;
  }

 private:
  const ClusterIndex* index_;
  std::vector<FactorId> factors_;
  std::vector<const Component*> comps_;
  std::vector<size_t> choice_;
  bool done_ = true;
};

/// Value-semantic hashing/equality over value vectors (int/double and
/// ±0 collapse, consistent with TupleCompare) — the key type of every
/// per-vector probability map in the confidence subsystem.
struct TupleValueHash {
  size_t operator()(const Tuple& t) const { return TupleHash(t); }
};
struct TupleValueEq {
  bool operator()(const Tuple& a, const Tuple& b) const {
    return TupleCompare(a, b) == 0;
  }
};
/// Per distinct value vector: accumulated probability mass.
using TupleProbMap =
    std::unordered_map<Tuple, double, TupleValueHash, TupleValueEq>;

/// One member tuple of a cluster, pre-resolved against an enumerator:
/// gating slots per factor and per-cell (factor position, local slot)
/// coordinates, so per-state evaluation is pure array reads.
struct ClusterMember {
  /// cell_pos entry for certain (inline-value) cells.
  static constexpr uint32_t kCertainCell = UINT32_MAX;

  const WsdTuple* t = nullptr;
  std::vector<std::vector<uint32_t>> gating;
  std::vector<std::pair<uint32_t, uint32_t>> cell_pos;
};

/// Resolves every member tuple of `cluster` against `en` (an enumerator
/// over the cluster's factors).
std::vector<ClusterMember> ResolveClusterMembers(const ClusterIndex& index,
                                                 const Cluster& cluster,
                                                 const ClusterEnumerator& en);

/// Fills `v` (pre-sized to the relation's arity) with the member's value
/// vector under the enumerator's current state. Returns false when the
/// member is absent in that state (a gating slot or a referenced cell
/// resolves to ⊥).
bool MemberVectorAt(const ClusterEnumerator& en, const ClusterMember& m,
                    Tuple* v);

/// Budgeted partial enumeration of a cluster's joint states with
/// per-vector mass accounting — the shared substrate of the exact
/// confidence path (scan to completion) and the approximate engine's
/// deterministic bounds (scan a prefix; the mass not yet visited brackets
/// every vector's probability as [mass(v), mass(v) + unvisited_mass()]).
class ClusterMassScan {
 public:
  ClusterMassScan(const ClusterIndex& index, const Cluster& cluster);

  const ClusterEnumerator& enumerator() const { return en_; }

  /// Enumerates up to `max_states` further joint states in odometer
  /// order, crediting each state's probability to the value vectors of
  /// its alive members. Returns true when the cluster is exhausted.
  bool Run(size_t max_states);

  bool done() const { return done_; }
  size_t states_visited() const { return states_visited_; }
  /// Σ StateProb over the visited states.
  double visited_mass() const { return visited_mass_; }
  /// Π of factor total masses — the mass of the entire state space
  /// (1 for normalized components).
  double total_mass() const { return total_mass_; }
  /// Mass of the states not yet visited, floored at 0.
  double unvisited_mass() const {
    double u = total_mass_ - visited_mass_;
    return u > 0.0 ? u : 0.0;
  }
  /// Visited probability mass per distinct value vector.
  const TupleProbMap& mass() const { return mass_; }
  /// Moves the mass map out of a finished scan.
  TupleProbMap TakeMass() && { return std::move(mass_); }

 private:
  ClusterEnumerator en_;
  std::vector<ClusterMember> members_;
  size_t arity_;
  TupleProbMap mass_;
  double visited_mass_ = 0.0;
  double total_mass_ = 1.0;
  size_t states_visited_ = 0;
  bool done_ = false;
};

}  // namespace maybms

#endif  // MAYBMS_CORE_CLUSTER_H_
