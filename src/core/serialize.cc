#include "core/serialize.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/parallel.h"
#include "common/string_util.h"
#include "core/snapshot_v3.h"
#include "storage/snapshot_io.h"
#include "storage/wal.h"

namespace maybms {

namespace {

constexpr const char* kMagic = "MAYBMS-WSD";
constexpr int kTextVersion = 1;
constexpr int kBinaryVersion = 2;
constexpr int kBinaryVersionV3 = 3;

// The wire codecs shared with the v3 sharded format (constants, cell
// encode/decode, component/tuple record layouts) live in
// core/snapshot_v3.h; the v2 reader/writer below delegates to them, so
// both versions stay byte-compatible at the record level by
// construction.
using snapshotv3::kCellRef;
using snapshotv3::kEndianMark;
using snapshotv3::kSecComponents;
using snapshotv3::kSecEnd;
using snapshotv3::kSecMeta;
using snapshotv3::kSecRelations;
using snapshotv3::kSecStrings;

// --- text writing ----------------------------------------------------------

void WriteString(std::ostream& out, const std::string& s) {
  out << "s" << s.size() << ":" << s;
}

void WriteValue(std::ostream& out, const Value& v) {
  if (v.is_null()) {
    out << "N";
  } else if (v.is_bottom()) {
    out << "B";
  } else if (v.is_bool()) {
    out << (v.as_bool() ? "T" : "F");
  } else if (v.is_int()) {
    out << "i" << v.as_int();
  } else if (v.is_double()) {
    out << "d" << StrFormat("%.17g", v.as_double());
  } else {
    WriteString(out, v.as_string());
  }
}

const char* TypeTag(ValueType t) {
  switch (t) {
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

// --- text reading ----------------------------------------------------------

class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  Status Expect(const std::string& token) {
    std::string t;
    if (!(in_ >> t) || t != token) {
      return Status::ParseError("expected token '" + token + "', got '" + t +
                                "'");
    }
    return Status::OK();
  }

  Result<std::string> ReadToken() {
    std::string t;
    if (!(in_ >> t)) return Status::ParseError("unexpected end of input");
    return t;
  }

  Result<int64_t> ReadInt() {
    int64_t v;
    if (!(in_ >> v)) return Status::ParseError("expected integer");
    return v;
  }

  Result<size_t> ReadSize() {
    MAYBMS_ASSIGN_OR_RETURN(int64_t v, ReadInt());
    if (v < 0) return Status::ParseError("expected non-negative integer");
    return static_cast<size_t>(v);
  }

  Result<double> ReadDouble() {
    double v;
    if (!(in_ >> v)) return Status::ParseError("expected double");
    return v;
  }

  Result<std::string> ReadString() {
    // Format: s<len>:<bytes> — the 's' may already be consumed by the
    // caller's token peek, so handle both.
    int c = SkipWs();
    if (c != 's') return Status::ParseError("expected string tag 's'");
    in_.get();
    size_t len = 0;
    MAYBMS_RETURN_IF_ERROR(ReadLenColon(&len));
    std::string s(len, '\0');
    in_.read(s.data(), static_cast<std::streamsize>(len));
    if (in_.gcount() != static_cast<std::streamsize>(len)) {
      return Status::ParseError("truncated string payload");
    }
    return s;
  }

  Result<Value> ReadValue() {
    int c = SkipWs();
    if (c == EOF) return Status::ParseError("unexpected end of input");
    switch (c) {
      case 'N':
        in_.get();
        return Value::Null();
      case 'B':
        in_.get();
        return Value::Bottom();
      case 'T':
        in_.get();
        return Value::Bool(true);
      case 'F':
        in_.get();
        return Value::Bool(false);
      case 'i': {
        in_.get();
        MAYBMS_ASSIGN_OR_RETURN(int64_t v, ReadInt());
        return Value::Int(v);
      }
      case 'd': {
        in_.get();
        MAYBMS_ASSIGN_OR_RETURN(double v, ReadDouble());
        return Value::Double(v);
      }
      case 's': {
        MAYBMS_ASSIGN_OR_RETURN(std::string s, ReadString());
        return Value::String(std::move(s));
      }
      default:
        return Status::ParseError(
            StrFormat("unknown value tag '%c'", static_cast<char>(c)));
    }
  }

 private:
  int SkipWs() {
    int c = in_.peek();
    while (c == ' ' || c == '\n' || c == '\t' || c == '\r') {
      in_.get();
      c = in_.peek();
    }
    return c;
  }

  Status ReadLenColon(size_t* len) {
    *len = 0;
    int c = in_.peek();
    if (!isdigit(c)) return Status::ParseError("expected string length");
    while (isdigit(in_.peek())) {
      *len = *len * 10 + static_cast<size_t>(in_.get() - '0');
    }
    if (in_.get() != ':') return Status::ParseError("expected ':'");
    return Status::OK();
  }

  std::istream& in_;
};

Result<ValueType> ParseType(const std::string& tag) {
  if (tag == "bool") return ValueType::kBool;
  if (tag == "int") return ValueType::kInt;
  if (tag == "double") return ValueType::kDouble;
  if (tag == "string") return ValueType::kString;
  return Status::ParseError("unknown type tag " + tag);
}

// Reads the text body (everything after "MAYBMS-WSD 1").
Result<WsdDb> ReadWsdDbText(std::istream& in) {
  Reader r(in);
  WsdDb db;
  MAYBMS_RETURN_IF_ERROR(r.Expect("OPTIONS"));
  MAYBMS_ASSIGN_OR_RETURN(size_t max_rows, r.ReadSize());
  db.mutable_options().max_component_rows = max_rows;

  MAYBMS_RETURN_IF_ERROR(r.Expect("COMPONENTS"));
  MAYBMS_ASSIGN_OR_RETURN(size_t n_comps, r.ReadSize());
  OwnerId max_owner = 0;
  for (size_t k = 0; k < n_comps; ++k) {
    MAYBMS_RETURN_IF_ERROR(r.Expect("COMPONENT"));
    MAYBMS_ASSIGN_OR_RETURN(size_t id, r.ReadSize());
    MAYBMS_ASSIGN_OR_RETURN(size_t n_slots, r.ReadSize());
    MAYBMS_ASSIGN_OR_RETURN(size_t n_rows, r.ReadSize());
    Component c;
    for (size_t s = 0; s < n_slots; ++s) {
      MAYBMS_RETURN_IF_ERROR(r.Expect("SLOT"));
      MAYBMS_ASSIGN_OR_RETURN(int64_t owner, r.ReadInt());
      MAYBMS_ASSIGN_OR_RETURN(std::string label, r.ReadString());
      c.AddSlot({static_cast<OwnerId>(owner), std::move(label)},
                Value::Null());
      max_owner = std::max(max_owner, static_cast<OwnerId>(owner));
    }
    // AddSlot added no rows (component empty); now read the rows.
    for (size_t row_i = 0; row_i < n_rows; ++row_i) {
      MAYBMS_RETURN_IF_ERROR(r.Expect("ROW"));
      ComponentRow row;
      MAYBMS_ASSIGN_OR_RETURN(row.prob, r.ReadDouble());
      row.values.reserve(n_slots);
      for (size_t s = 0; s < n_slots; ++s) {
        MAYBMS_ASSIGN_OR_RETURN(Value v, r.ReadValue());
        row.values.push_back(std::move(v));
      }
      MAYBMS_RETURN_IF_ERROR(c.AddRow(std::move(row)));
    }
    MAYBMS_RETURN_IF_ERROR(
        snapshotv3::PlaceComponentAt(&db, id, k, std::move(c)));
  }

  MAYBMS_RETURN_IF_ERROR(r.Expect("RELATIONS"));
  MAYBMS_ASSIGN_OR_RETURN(size_t n_rels, r.ReadSize());
  for (size_t k = 0; k < n_rels; ++k) {
    MAYBMS_RETURN_IF_ERROR(r.Expect("RELATION"));
    MAYBMS_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    MAYBMS_ASSIGN_OR_RETURN(std::string display, r.ReadString());
    MAYBMS_ASSIGN_OR_RETURN(size_t n_cols, r.ReadSize());
    MAYBMS_ASSIGN_OR_RETURN(size_t n_tuples, r.ReadSize());
    Schema schema;
    for (size_t c = 0; c < n_cols; ++c) {
      MAYBMS_RETURN_IF_ERROR(r.Expect("COL"));
      MAYBMS_ASSIGN_OR_RETURN(std::string col, r.ReadString());
      MAYBMS_ASSIGN_OR_RETURN(std::string tag, r.ReadToken());
      MAYBMS_ASSIGN_OR_RETURN(ValueType type, ParseType(tag));
      MAYBMS_RETURN_IF_ERROR(schema.Add({std::move(col), type}));
    }
    MAYBMS_RETURN_IF_ERROR(db.CreateRelation(name, schema));
    WsdRelation* rel = db.GetMutableRelation(name).value();
    rel->set_display_name(display);
    rel->Reserve(n_tuples);
    for (size_t i = 0; i < n_tuples; ++i) {
      MAYBMS_RETURN_IF_ERROR(r.Expect("TUPLE"));
      MAYBMS_ASSIGN_OR_RETURN(size_t n_deps, r.ReadSize());
      WsdTuple t;
      for (size_t d = 0; d < n_deps; ++d) {
        MAYBMS_ASSIGN_OR_RETURN(int64_t o, r.ReadInt());
        t.AddDep(static_cast<OwnerId>(o));
        max_owner = std::max(max_owner, static_cast<OwnerId>(o));
      }
      MAYBMS_RETURN_IF_ERROR(r.Expect("|"));
      t.cells.reserve(n_cols);
      for (size_t c = 0; c < n_cols; ++c) {
        MAYBMS_ASSIGN_OR_RETURN(std::string tag, r.ReadToken());
        if (tag == "C") {
          MAYBMS_ASSIGN_OR_RETURN(Value v, r.ReadValue());
          t.cells.push_back(Cell::Certain(std::move(v)));
        } else if (tag == "R") {
          MAYBMS_ASSIGN_OR_RETURN(size_t cid, r.ReadSize());
          MAYBMS_ASSIGN_OR_RETURN(size_t slot, r.ReadSize());
          t.cells.push_back(Cell::Ref({static_cast<ComponentId>(cid),
                                       static_cast<uint32_t>(slot)}));
        } else {
          return Status::ParseError("expected cell tag C or R, got " + tag);
        }
      }
      rel->Add(std::move(t));
    }
  }
  MAYBMS_RETURN_IF_ERROR(r.Expect("END"));
  db.BumpOwner(max_owner);
  MAYBMS_RETURN_IF_ERROR(db.CheckInvariants());
  return db;
}

// --- binary format ---------------------------------------------------------
//
// Layout after the "MAYBMS-WSD 2\n" header line (see
// docs/SNAPSHOT_FORMAT.md for the full spec): a fixed sequence of
// checksummed sections META, STRS, COMP, RELS, END. All cell data is
// written as raw tag/payload arrays; string payloads are snapshot-local
// ids into the STRS table, remapped to the process ValuePool on load.

std::string BuildMetaPayload(const WsdDb& db) {
  std::string meta;
  PutPod(&meta, kEndianMark);
  PutPod(&meta, static_cast<uint64_t>(db.options().max_component_rows));
  PutPod(&meta, static_cast<uint64_t>(db.owner_counter()));
  return meta;
}

std::string BuildComponentsPayload(const WsdDb& db,
                                   SnapshotStringTable* strings) {
  std::string comp;
  auto live = db.LiveComponents();
  PutPod(&comp, static_cast<uint32_t>(live.size()));
  for (ComponentId id : live) {
    snapshotv3::AppendComponentRecord(db, id, strings, &comp);
  }
  return comp;
}

std::string BuildRelationsPayload(const WsdDb& db,
                                  SnapshotStringTable* strings) {
  std::string rels;
  PutPod(&rels, static_cast<uint32_t>(db.relations().size()));
  for (const auto& [key, rel] : db.relations()) {
    const size_t n_cols = rel.schema().size();
    const size_t n_tuples = rel.NumTuples();
    PutLenString(&rels, rel.name());
    PutLenString(&rels, rel.display_name());
    PutPod(&rels, static_cast<uint32_t>(n_cols));
    PutPod(&rels, static_cast<uint64_t>(n_tuples));
    for (size_t c = 0; c < n_cols; ++c) {
      PutLenString(&rels, rel.schema().attr(c).name);
      PutPod(&rels, static_cast<uint8_t>(rel.schema().attr(c).type));
    }
    // A v2 relation body is exactly one shard record spanning every
    // tuple; v3 splits the same record layout into multiple blocks.
    snapshotv3::AppendShardRecord(rel, 0, n_tuples, strings, &rels);
  }
  return rels;
}

Result<SnapshotSection> ReadSectionExpecting(std::istream& in, uint32_t tag) {
  MAYBMS_ASSIGN_OR_RETURN(SnapshotSection s, ReadSnapshotSection(in));
  if (s.tag != tag) {
    return Status::ParseError(
        StrFormat("expected snapshot section %s, got %s",
                  SnapshotTagName(tag).c_str(),
                  SnapshotTagName(s.tag).c_str()));
  }
  return s;
}

Status ParseComponentsSection(const SnapshotSection& section,
                              const std::vector<uint32_t>& local_to_global,
                              WsdDb* db) {
  SnapshotCursor cur(section.payload);
  MAYBMS_ASSIGN_OR_RETURN(uint32_t n_comps, cur.Read<uint32_t>());
  for (uint32_t k = 0; k < n_comps; ++k) {
    MAYBMS_ASSIGN_OR_RETURN(
        auto decoded, snapshotv3::DecodeComponentRecord(&cur, local_to_global));
    MAYBMS_RETURN_IF_ERROR(snapshotv3::PlaceComponentAt(
        db, decoded.first, k, std::move(decoded.second)));
  }
  if (!cur.AtEnd()) {
    return Status::ParseError("trailing bytes in snapshot COMP section");
  }
  return Status::OK();
}

Status ParseRelationsSection(const SnapshotSection& section,
                             const std::vector<uint32_t>& local_to_global,
                             WsdDb* db) {
  SnapshotCursor cur(section.payload);
  MAYBMS_ASSIGN_OR_RETURN(uint32_t n_rels, cur.Read<uint32_t>());
  // Materialize pool references once per distinct string: tuple builders
  // then read them without touching the pool's mutex per cell.
  std::vector<const std::string*> local_strings;
  local_strings.reserve(local_to_global.size());
  {
    ValuePool& pool = ValuePool::Global();
    for (uint32_t gid : local_to_global) local_strings.push_back(&pool.Get(gid));
  }
  for (uint32_t k = 0; k < n_rels; ++k) {
    MAYBMS_ASSIGN_OR_RETURN(std::string name, cur.ReadLenString());
    MAYBMS_ASSIGN_OR_RETURN(std::string display, cur.ReadLenString());
    MAYBMS_ASSIGN_OR_RETURN(uint32_t n_cols, cur.Read<uint32_t>());
    MAYBMS_ASSIGN_OR_RETURN(uint64_t n_tuples64, cur.Read<uint64_t>());
    const size_t n_tuples = static_cast<size_t>(n_tuples64);
    Schema schema;
    for (uint32_t c = 0; c < n_cols; ++c) {
      MAYBMS_ASSIGN_OR_RETURN(std::string col, cur.ReadLenString());
      MAYBMS_ASSIGN_OR_RETURN(uint8_t type, cur.Read<uint8_t>());
      if (type > static_cast<uint8_t>(ValueType::kString)) {
        return Status::ParseError("attribute type out of range in snapshot");
      }
      MAYBMS_RETURN_IF_ERROR(
          schema.Add({std::move(col), static_cast<ValueType>(type)}));
    }
    MAYBMS_RETURN_IF_ERROR(db->CreateRelation(name, schema));
    WsdRelation* rel = db->GetMutableRelation(name).value();
    rel->set_display_name(display);
    std::vector<uint32_t> dep_counts;
    MAYBMS_RETURN_IF_ERROR(cur.ReadArray(n_tuples, &dep_counts));
    MAYBMS_ASSIGN_OR_RETURN(uint64_t n_deps, cur.Read<uint64_t>());
    std::vector<uint64_t> deps_flat;
    MAYBMS_RETURN_IF_ERROR(cur.ReadArray(static_cast<size_t>(n_deps),
                                         &deps_flat));
    std::vector<uint64_t> dep_offsets(n_tuples);
    uint64_t dep_pos = 0;
    for (size_t t_i = 0; t_i < n_tuples; ++t_i) {
      dep_offsets[t_i] = dep_pos;
      dep_pos += dep_counts[t_i];
    }
    if (dep_pos != deps_flat.size()) {
      return Status::ParseError("snapshot dependency list inconsistent");
    }
    if (n_cols != 0 && n_tuples > cur.remaining() / n_cols) {
      return Status::ParseError("snapshot cell array exceeds payload");
    }
    std::vector<uint8_t> tags;
    std::vector<uint64_t> payloads;
    MAYBMS_RETURN_IF_ERROR(cur.ReadArray(n_tuples * n_cols, &tags));
    MAYBMS_RETURN_IF_ERROR(cur.ReadArray(n_tuples * n_cols, &payloads));
    // Tuple construction dominates large loads, and unlike the token
    // stream of the text format the bulk arrays are random-access —
    // shard it over the pool. Each chunk owns a disjoint tuple range.
    std::vector<WsdTuple>& tuples = rel->mutable_tuples();
    tuples.resize(n_tuples);
    constexpr size_t kTuplesPerChunk = 4096;
    const size_t n_chunks =
        n_tuples == 0 ? 0 : (n_tuples + kTuplesPerChunk - 1) / kTuplesPerChunk;
    std::vector<Status> chunk_status(n_chunks);
    ParallelFor(n_chunks <= 1 ? 1 : 0, n_chunks, [&](size_t chunk) {
      size_t begin = chunk * kTuplesPerChunk;
      size_t end = std::min(begin + kTuplesPerChunk, n_tuples);
      chunk_status[chunk] =
          snapshotv3::BuildTupleRange(&tuples, begin, end, n_cols, dep_counts,
                                      dep_offsets, deps_flat, tags, payloads,
                                      local_strings);
    });
    for (const Status& st : chunk_status) MAYBMS_RETURN_IF_ERROR(st);
  }
  if (!cur.AtEnd()) {
    return Status::ParseError("trailing bytes in snapshot RELS section");
  }
  return Status::OK();
}

// Reads the binary body (everything after "MAYBMS-WSD 2").
Result<WsdDb> ReadWsdDbBinaryBody(std::istream& in) {
  if (in.get() != '\n') {
    return Status::ParseError("expected newline after binary snapshot header");
  }
  MAYBMS_ASSIGN_OR_RETURN(SnapshotSection meta,
                          ReadSectionExpecting(in, kSecMeta));
  SnapshotCursor mc(meta.payload);
  MAYBMS_ASSIGN_OR_RETURN(uint32_t endian, mc.Read<uint32_t>());
  if (endian != kEndianMark) {
    return Status::Unsupported(
        "snapshot was written on a machine with a different byte order");
  }
  MAYBMS_ASSIGN_OR_RETURN(uint64_t max_rows, mc.Read<uint64_t>());
  MAYBMS_ASSIGN_OR_RETURN(uint64_t owner_counter, mc.Read<uint64_t>());
  if (!mc.AtEnd()) {
    return Status::ParseError("trailing bytes in snapshot META section");
  }

  MAYBMS_ASSIGN_OR_RETURN(SnapshotSection strs,
                          ReadSectionExpecting(in, kSecStrings));
  MAYBMS_ASSIGN_OR_RETURN(std::vector<uint32_t> local_to_global,
                          SnapshotStringTable::Restore(strs.payload));

  WsdDb db;
  db.mutable_options().max_component_rows = static_cast<size_t>(max_rows);
  MAYBMS_ASSIGN_OR_RETURN(SnapshotSection comp,
                          ReadSectionExpecting(in, kSecComponents));
  MAYBMS_RETURN_IF_ERROR(ParseComponentsSection(comp, local_to_global, &db));
  MAYBMS_ASSIGN_OR_RETURN(SnapshotSection rels,
                          ReadSectionExpecting(in, kSecRelations));
  MAYBMS_RETURN_IF_ERROR(ParseRelationsSection(rels, local_to_global, &db));
  MAYBMS_ASSIGN_OR_RETURN(SnapshotSection end,
                          ReadSectionExpecting(in, kSecEnd));
  if (!end.payload.empty()) {
    return Status::ParseError("snapshot END section carries payload");
  }
  if (owner_counter > 0) db.BumpOwner(static_cast<OwnerId>(owner_counter - 1));
  MAYBMS_RETURN_IF_ERROR(db.CheckInvariants());
  return db;
}

}  // namespace

Status WriteWsdDb(const WsdDb& db, std::ostream& out) {
  out << kMagic << " " << kTextVersion << "\n";
  out << "OPTIONS " << db.options().max_component_rows << "\n";

  auto live = db.LiveComponents();
  out << "COMPONENTS " << live.size() << "\n";
  for (ComponentId id : live) {
    const Component& c = db.component(id);
    out << "COMPONENT " << id << " " << c.NumSlots() << " " << c.NumRows()
        << "\n";
    for (uint32_t s = 0; s < c.NumSlots(); ++s) {
      out << "SLOT " << c.slot(s).owner << " ";
      WriteString(out, c.slot(s).label);
      out << "\n";
    }
    for (size_t r = 0; r < c.NumRows(); ++r) {
      out << "ROW " << StrFormat("%.17g", c.prob(r));
      for (uint32_t s = 0; s < c.NumSlots(); ++s) {
        out << " ";
        WriteValue(out, c.ValueAt(r, s));
      }
      out << "\n";
    }
  }

  out << "RELATIONS " << db.relations().size() << "\n";
  for (const auto& [key, rel] : db.relations()) {
    out << "RELATION ";
    WriteString(out, rel.name());
    out << " ";
    WriteString(out, rel.display_name());
    out << " " << rel.schema().size() << " " << rel.NumTuples() << "\n";
    for (size_t c = 0; c < rel.schema().size(); ++c) {
      out << "COL ";
      WriteString(out, rel.schema().attr(c).name);
      out << " " << TypeTag(rel.schema().attr(c).type) << "\n";
    }
    for (const auto& t : rel.tuples()) {
      out << "TUPLE " << t.deps.size();
      for (OwnerId o : t.deps) out << " " << o;
      out << " |";
      for (const auto& cell : t.cells) {
        if (cell.is_certain()) {
          out << " C ";
          WriteValue(out, cell.value());
        } else {
          out << " R " << cell.ref().cid << " " << cell.ref().slot;
        }
      }
      out << "\n";
    }
  }
  out << "END\n";
  if (!out.good()) return Status::Internal("stream write failure");
  return Status::OK();
}

Status WriteWsdDbBinary(const WsdDb& db, std::ostream& out) {
  out << kMagic << " " << kBinaryVersion << "\n";
  // COMP and RELS are built first so they populate the string table; the
  // sections are then emitted in reader order with STRS ahead of both.
  SnapshotStringTable strings;
  std::string comp = BuildComponentsPayload(db, &strings);
  std::string rels = BuildRelationsPayload(db, &strings);
  MAYBMS_RETURN_IF_ERROR(
      WriteSnapshotSection(out, kSecMeta, BuildMetaPayload(db)));
  MAYBMS_RETURN_IF_ERROR(
      WriteSnapshotSection(out, kSecStrings, strings.Serialize()));
  MAYBMS_RETURN_IF_ERROR(WriteSnapshotSection(out, kSecComponents, comp));
  MAYBMS_RETURN_IF_ERROR(WriteSnapshotSection(out, kSecRelations, rels));
  MAYBMS_RETURN_IF_ERROR(WriteSnapshotSection(out, kSecEnd, ""));
  if (!out.good()) return Status::Internal("stream write failure");
  return Status::OK();
}

Result<std::string> SerializeWsdDb(const WsdDb& db, SnapshotFormat format) {
  std::ostringstream out;
  Status st;
  switch (format) {
    case SnapshotFormat::kBinary:
      st = WriteWsdDbBinaryV3(db, out);
      break;
    case SnapshotFormat::kBinaryV2:
      st = WriteWsdDbBinary(db, out);
      break;
    case SnapshotFormat::kText:
      st = WriteWsdDb(db, out);
      break;
  }
  MAYBMS_RETURN_IF_ERROR(st);
  return std::move(out).str();
}

namespace {

// A freshly written snapshot starts a new log generation: any sibling
// `.wal` belongs to the previous snapshot and must not survive, even
// when the new bytes happen to coincide with the old ones (re-saving an
// unchanged database must not revalidate the old log's statements —
// the fingerprint alone cannot tell those generations apart). Runs
// after the snapshot rename: a crash before the removal leaves
// new-snapshot + old-log, which the fingerprint check resolves.
Status DropStaleWal(Env* env, const std::string& path) {
  Status rm = WithRetry(
      env, 4, [&]() -> Status { return env->RemoveFile(wal::WalPathFor(path)); });
  if (rm.code() == StatusCode::kNotFound) return Status::OK();
  return rm;
}

}  // namespace

Status SaveWsdDb(const WsdDb& db, const std::string& path,
                 SnapshotFormat format, const SaveFileOptions& opts) {
  MAYBMS_ASSIGN_OR_RETURN(std::string bytes, SerializeWsdDb(db, format));
  Env* env = opts.env ? opts.env : Env::Default();
  if (opts.sync) {
    MAYBMS_RETURN_IF_ERROR(AtomicWriteFile(env, path, bytes));
    return DropStaleWal(env, path);
  }
  // No-sync path still goes through a temp + rename, so readers (and a
  // plain process crash) never observe a half-written snapshot; it only
  // skips the fsyncs that defend against power loss.
  const std::string tmp = path + ".tmp";
  MAYBMS_RETURN_IF_ERROR(WithRetry(env, 4, [&]() -> Status {
    MAYBMS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                            env->NewWritableFile(tmp, /*truncate=*/true));
    MAYBMS_RETURN_IF_ERROR(file->Append(bytes));
    MAYBMS_RETURN_IF_ERROR(file->Close());
    return env->RenameFile(tmp, path);
  }));
  return DropStaleWal(env, path);
}

Result<WsdDb> ReadWsdDb(std::istream& in) {
  // Both formats share the "MAYBMS-WSD <version>" header line; negotiate
  // the body reader from the version number.
  std::string magic;
  if (!(in >> magic) || magic != kMagic) {
    return Status::ParseError("expected token '" + std::string(kMagic) +
                              "', got '" + magic + "'");
  }
  long long version;
  if (!(in >> version)) {
    return Status::ParseError("expected snapshot version number");
  }
  if (version == kTextVersion) return ReadWsdDbText(in);
  if (version == kBinaryVersion) return ReadWsdDbBinaryBody(in);
  if (version == kBinaryVersionV3) return snapshotv3::ReadWsdDbV3Body(in);
  return Status::Unsupported(
      StrFormat("unsupported WSD format version %lld", version));
}

Result<WsdDb> LoadWsdDb(const std::string& path, Env* env) {
  if (env == nullptr || env == Env::Default()) {
    // Fast path for the real filesystem: stream straight from the file
    // instead of staging the whole snapshot in memory first.
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("cannot open: " + path);
    return ReadWsdDb(in);
  }
  MAYBMS_ASSIGN_OR_RETURN(std::string bytes, env->ReadFileToString(path));
  std::istringstream in(std::move(bytes));
  return ReadWsdDb(in);
}

}  // namespace maybms
