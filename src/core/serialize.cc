#include "core/serialize.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace maybms {

namespace {

constexpr const char* kMagic = "MAYBMS-WSD";
constexpr int kVersion = 1;

// --- writing ---------------------------------------------------------------

void WriteString(std::ostream& out, const std::string& s) {
  out << "s" << s.size() << ":" << s;
}

void WriteValue(std::ostream& out, const Value& v) {
  if (v.is_null()) {
    out << "N";
  } else if (v.is_bottom()) {
    out << "B";
  } else if (v.is_bool()) {
    out << (v.as_bool() ? "T" : "F");
  } else if (v.is_int()) {
    out << "i" << v.as_int();
  } else if (v.is_double()) {
    out << "d" << StrFormat("%.17g", v.as_double());
  } else {
    WriteString(out, v.as_string());
  }
}

const char* TypeTag(ValueType t) {
  switch (t) {
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

// --- reading ---------------------------------------------------------------

class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  Status Expect(const std::string& token) {
    std::string t;
    if (!(in_ >> t) || t != token) {
      return Status::ParseError("expected token '" + token + "', got '" + t +
                                "'");
    }
    return Status::OK();
  }

  Result<std::string> ReadToken() {
    std::string t;
    if (!(in_ >> t)) return Status::ParseError("unexpected end of input");
    return t;
  }

  Result<int64_t> ReadInt() {
    int64_t v;
    if (!(in_ >> v)) return Status::ParseError("expected integer");
    return v;
  }

  Result<size_t> ReadSize() {
    MAYBMS_ASSIGN_OR_RETURN(int64_t v, ReadInt());
    if (v < 0) return Status::ParseError("expected non-negative integer");
    return static_cast<size_t>(v);
  }

  Result<double> ReadDouble() {
    double v;
    if (!(in_ >> v)) return Status::ParseError("expected double");
    return v;
  }

  Result<std::string> ReadString() {
    // Format: s<len>:<bytes> — the 's' may already be consumed by the
    // caller's token peek, so handle both.
    int c = SkipWs();
    if (c != 's') return Status::ParseError("expected string tag 's'");
    in_.get();
    size_t len = 0;
    MAYBMS_RETURN_IF_ERROR(ReadLenColon(&len));
    std::string s(len, '\0');
    in_.read(s.data(), static_cast<std::streamsize>(len));
    if (in_.gcount() != static_cast<std::streamsize>(len)) {
      return Status::ParseError("truncated string payload");
    }
    return s;
  }

  Result<Value> ReadValue() {
    int c = SkipWs();
    if (c == EOF) return Status::ParseError("unexpected end of input");
    switch (c) {
      case 'N':
        in_.get();
        return Value::Null();
      case 'B':
        in_.get();
        return Value::Bottom();
      case 'T':
        in_.get();
        return Value::Bool(true);
      case 'F':
        in_.get();
        return Value::Bool(false);
      case 'i': {
        in_.get();
        MAYBMS_ASSIGN_OR_RETURN(int64_t v, ReadInt());
        return Value::Int(v);
      }
      case 'd': {
        in_.get();
        MAYBMS_ASSIGN_OR_RETURN(double v, ReadDouble());
        return Value::Double(v);
      }
      case 's': {
        MAYBMS_ASSIGN_OR_RETURN(std::string s, ReadString());
        return Value::String(std::move(s));
      }
      default:
        return Status::ParseError(
            StrFormat("unknown value tag '%c'", static_cast<char>(c)));
    }
  }

 private:
  int SkipWs() {
    int c = in_.peek();
    while (c == ' ' || c == '\n' || c == '\t' || c == '\r') {
      in_.get();
      c = in_.peek();
    }
    return c;
  }

  Status ReadLenColon(size_t* len) {
    *len = 0;
    int c = in_.peek();
    if (!isdigit(c)) return Status::ParseError("expected string length");
    while (isdigit(in_.peek())) {
      *len = *len * 10 + static_cast<size_t>(in_.get() - '0');
    }
    if (in_.get() != ':') return Status::ParseError("expected ':'");
    return Status::OK();
  }

  std::istream& in_;
};

Result<ValueType> ParseType(const std::string& tag) {
  if (tag == "bool") return ValueType::kBool;
  if (tag == "int") return ValueType::kInt;
  if (tag == "double") return ValueType::kDouble;
  if (tag == "string") return ValueType::kString;
  return Status::ParseError("unknown type tag " + tag);
}

}  // namespace

Status WriteWsdDb(const WsdDb& db, std::ostream& out) {
  out << kMagic << " " << kVersion << "\n";
  out << "OPTIONS " << db.options().max_component_rows << "\n";

  auto live = db.LiveComponents();
  out << "COMPONENTS " << live.size() << "\n";
  for (ComponentId id : live) {
    const Component& c = db.component(id);
    out << "COMPONENT " << id << " " << c.NumSlots() << " " << c.NumRows()
        << "\n";
    for (uint32_t s = 0; s < c.NumSlots(); ++s) {
      out << "SLOT " << c.slot(s).owner << " ";
      WriteString(out, c.slot(s).label);
      out << "\n";
    }
    for (size_t r = 0; r < c.NumRows(); ++r) {
      out << "ROW " << StrFormat("%.17g", c.prob(r));
      for (uint32_t s = 0; s < c.NumSlots(); ++s) {
        out << " ";
        WriteValue(out, c.ValueAt(r, s));
      }
      out << "\n";
    }
  }

  out << "RELATIONS " << db.relations().size() << "\n";
  for (const auto& [key, rel] : db.relations()) {
    out << "RELATION ";
    WriteString(out, rel.name());
    out << " ";
    WriteString(out, rel.display_name());
    out << " " << rel.schema().size() << " " << rel.NumTuples() << "\n";
    for (size_t c = 0; c < rel.schema().size(); ++c) {
      out << "COL ";
      WriteString(out, rel.schema().attr(c).name);
      out << " " << TypeTag(rel.schema().attr(c).type) << "\n";
    }
    for (const auto& t : rel.tuples()) {
      out << "TUPLE " << t.deps.size();
      for (OwnerId o : t.deps) out << " " << o;
      out << " |";
      for (const auto& cell : t.cells) {
        if (cell.is_certain()) {
          out << " C ";
          WriteValue(out, cell.value());
        } else {
          out << " R " << cell.ref().cid << " " << cell.ref().slot;
        }
      }
      out << "\n";
    }
  }
  out << "END\n";
  if (!out.good()) return Status::Internal("stream write failure");
  return Status::OK();
}

Status SaveWsdDb(const WsdDb& db, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::InvalidArgument("cannot open for write: " + path);
  return WriteWsdDb(db, out);
}

Result<WsdDb> ReadWsdDb(std::istream& in) {
  Reader r(in);
  MAYBMS_RETURN_IF_ERROR(r.Expect(kMagic));
  MAYBMS_ASSIGN_OR_RETURN(int64_t version, r.ReadInt());
  if (version != kVersion) {
    return Status::Unsupported(
        StrFormat("unsupported WSD format version %lld",
                  static_cast<long long>(version)));
  }
  WsdDb db;
  MAYBMS_RETURN_IF_ERROR(r.Expect("OPTIONS"));
  MAYBMS_ASSIGN_OR_RETURN(size_t max_rows, r.ReadSize());
  db.mutable_options().max_component_rows = max_rows;

  MAYBMS_RETURN_IF_ERROR(r.Expect("COMPONENTS"));
  MAYBMS_ASSIGN_OR_RETURN(size_t n_comps, r.ReadSize());
  OwnerId max_owner = 0;
  for (size_t k = 0; k < n_comps; ++k) {
    MAYBMS_RETURN_IF_ERROR(r.Expect("COMPONENT"));
    MAYBMS_ASSIGN_OR_RETURN(size_t id, r.ReadSize());
    MAYBMS_ASSIGN_OR_RETURN(size_t n_slots, r.ReadSize());
    MAYBMS_ASSIGN_OR_RETURN(size_t n_rows, r.ReadSize());
    Component c;
    for (size_t s = 0; s < n_slots; ++s) {
      MAYBMS_RETURN_IF_ERROR(r.Expect("SLOT"));
      MAYBMS_ASSIGN_OR_RETURN(int64_t owner, r.ReadInt());
      MAYBMS_ASSIGN_OR_RETURN(std::string label, r.ReadString());
      c.AddSlot({static_cast<OwnerId>(owner), std::move(label)},
                Value::Null());
      max_owner = std::max(max_owner, static_cast<OwnerId>(owner));
    }
    // AddSlot added no rows (component empty); now read the rows.
    for (size_t row_i = 0; row_i < n_rows; ++row_i) {
      MAYBMS_RETURN_IF_ERROR(r.Expect("ROW"));
      ComponentRow row;
      MAYBMS_ASSIGN_OR_RETURN(row.prob, r.ReadDouble());
      row.values.reserve(n_slots);
      for (size_t s = 0; s < n_slots; ++s) {
        MAYBMS_ASSIGN_OR_RETURN(Value v, r.ReadValue());
        row.values.push_back(std::move(v));
      }
      MAYBMS_RETURN_IF_ERROR(c.AddRow(std::move(row)));
    }
    // Place the component at exactly the stored id (cells reference it);
    // ids were written ascending, gaps become dead slots.
    for (;;) {
      ComponentId got = db.AddComponent(Component());
      if (got == id) {
        db.mutable_component(got) = std::move(c);
        break;
      }
      if (got > id) return Status::ParseError("component ids out of order");
      db.RemoveComponent(got);  // filler for a gap in the id space
    }
  }

  MAYBMS_RETURN_IF_ERROR(r.Expect("RELATIONS"));
  MAYBMS_ASSIGN_OR_RETURN(size_t n_rels, r.ReadSize());
  for (size_t k = 0; k < n_rels; ++k) {
    MAYBMS_RETURN_IF_ERROR(r.Expect("RELATION"));
    MAYBMS_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    MAYBMS_ASSIGN_OR_RETURN(std::string display, r.ReadString());
    MAYBMS_ASSIGN_OR_RETURN(size_t n_cols, r.ReadSize());
    MAYBMS_ASSIGN_OR_RETURN(size_t n_tuples, r.ReadSize());
    Schema schema;
    for (size_t c = 0; c < n_cols; ++c) {
      MAYBMS_RETURN_IF_ERROR(r.Expect("COL"));
      MAYBMS_ASSIGN_OR_RETURN(std::string col, r.ReadString());
      MAYBMS_ASSIGN_OR_RETURN(std::string tag, r.ReadToken());
      MAYBMS_ASSIGN_OR_RETURN(ValueType type, ParseType(tag));
      MAYBMS_RETURN_IF_ERROR(schema.Add({std::move(col), type}));
    }
    MAYBMS_RETURN_IF_ERROR(db.CreateRelation(name, schema));
    WsdRelation* rel = db.GetMutableRelation(name).value();
    rel->set_display_name(display);
    rel->Reserve(n_tuples);
    for (size_t i = 0; i < n_tuples; ++i) {
      MAYBMS_RETURN_IF_ERROR(r.Expect("TUPLE"));
      MAYBMS_ASSIGN_OR_RETURN(size_t n_deps, r.ReadSize());
      WsdTuple t;
      for (size_t d = 0; d < n_deps; ++d) {
        MAYBMS_ASSIGN_OR_RETURN(int64_t o, r.ReadInt());
        t.AddDep(static_cast<OwnerId>(o));
        max_owner = std::max(max_owner, static_cast<OwnerId>(o));
      }
      MAYBMS_RETURN_IF_ERROR(r.Expect("|"));
      t.cells.reserve(n_cols);
      for (size_t c = 0; c < n_cols; ++c) {
        MAYBMS_ASSIGN_OR_RETURN(std::string tag, r.ReadToken());
        if (tag == "C") {
          MAYBMS_ASSIGN_OR_RETURN(Value v, r.ReadValue());
          t.cells.push_back(Cell::Certain(std::move(v)));
        } else if (tag == "R") {
          MAYBMS_ASSIGN_OR_RETURN(size_t cid, r.ReadSize());
          MAYBMS_ASSIGN_OR_RETURN(size_t slot, r.ReadSize());
          t.cells.push_back(Cell::Ref({static_cast<ComponentId>(cid),
                                       static_cast<uint32_t>(slot)}));
        } else {
          return Status::ParseError("expected cell tag C or R, got " + tag);
        }
      }
      rel->Add(std::move(t));
    }
  }
  MAYBMS_RETURN_IF_ERROR(r.Expect("END"));
  db.BumpOwner(max_owner);
  MAYBMS_RETURN_IF_ERROR(db.CheckInvariants());
  return db;
}

Result<WsdDb> LoadWsdDb(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  return ReadWsdDb(in);
}

}  // namespace maybms
