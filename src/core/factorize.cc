#include "core/factorize.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "common/union_find.h"

namespace maybms {

namespace {

// Distribution over the (packed) values of one slot. Packed keys keep
// the analysis allocation-free and hash-based — this machinery runs on
// every confidence query now (ClusterIndex factorizes locally), not just
// in the offline Factorize() pass.
using Marginal = std::unordered_map<PackedValue, double, PackedValueHash>;

Marginal SlotMarginal(const Component& c, uint32_t s) {
  Marginal m;
  const std::vector<PackedValue>& col = c.column(s);
  for (size_t r = 0; r < c.NumRows(); ++r) m[col[r]] += c.prob(r);
  return m;
}

struct PackedPairHash {
  size_t operator()(const std::pair<PackedValue, PackedValue>& p) const {
    size_t h = p.first.Hash();
    HashCombine(&h, p.second.Hash());
    return h;
  }
};

// Tests whether slots a and b are independent: joint == product of
// marginals for every observed pair (and the joint support is the full
// product — checked via the probability equation, which fails on missing
// combinations since those would need probability 0 = pa*pb > 0).
bool PairwiseIndependent(const Component& c, uint32_t a, uint32_t b,
                         const Marginal& ma, const Marginal& mb, double eps) {
  size_t full = ma.size() * mb.size();
  // The joint support can never exceed the row count, so a fuller-than-
  // the-rows product is dependent without building the joint map (this
  // also keeps the reserve bounded — full can be quadratic in rows).
  if (full > c.NumRows()) return false;
  std::unordered_map<std::pair<PackedValue, PackedValue>, double,
                     PackedPairHash>
      joint;
  joint.reserve(full);
  const std::vector<PackedValue>& ca = c.column(a);
  const std::vector<PackedValue>& cb = c.column(b);
  for (size_t r = 0; r < c.NumRows(); ++r) {
    joint[{ca[r], cb[r]}] += c.prob(r);
    // More support pairs than the product ⇒ dependent (cannot happen for
    // exact marginals, but cheap insurance against eps drift).
    if (joint.size() > full) return false;
  }
  // Support size check: full independence needs |joint| == |ma| * |mb|.
  if (joint.size() != full) return false;
  for (const auto& [pair, p] : joint) {
    double expected = ma.at(pair.first) * mb.at(pair.second);
    if (std::abs(p - expected) > eps) return false;
  }
  return true;
}

// Hash-indexed lookup from the projection of a component row onto a slot
// group to the group-projection's aggregated probability. Rows are kept
// packed so lookups neither allocate nor materialize Values; keeps the
// verification pass linear in rows instead of rows × projection size.
class ProjectionIndex {
 public:
  explicit ProjectionIndex(const std::vector<ComponentRow>& rows) {
    packed_.reserve(rows.size());
    probs_.reserve(rows.size());
    buckets_.reserve(rows.size() * 2);
    for (const ComponentRow& row : rows) {
      std::vector<PackedValue> packed;
      packed.reserve(row.values.size());
      for (const Value& v : row.values) packed.push_back(PackedValue::FromValue(v));
      size_t h = packed.size();
      for (const PackedValue& v : packed) HashCombine(&h, v.Hash());
      buckets_[h].push_back(packed_.size());
      packed_.push_back(std::move(packed));
      probs_.push_back(row.prob);
    }
  }

  /// Probability of the projection of row r of `c` onto `slots`;
  /// negative when the projection is not among the indexed rows.
  double Lookup(const Component& c, size_t r,
                const std::vector<uint32_t>& slots) const {
    size_t h = slots.size();
    for (uint32_t s : slots) HashCombine(&h, c.packed(r, s).Hash());
    auto it = buckets_.find(h);
    if (it == buckets_.end()) return -1.0;
    for (size_t idx : it->second) {
      const std::vector<PackedValue>& vals = packed_[idx];
      bool eq = vals.size() == slots.size();
      for (size_t i = 0; eq && i < slots.size(); ++i) {
        if (vals[i] != c.packed(r, slots[i])) eq = false;
      }
      if (eq) return probs_[idx];
    }
    return -1.0;
  }

 private:
  std::vector<std::vector<PackedValue>> packed_;
  std::vector<double> probs_;
  std::unordered_map<size_t, std::vector<size_t>> buckets_;
};

// Exact verification that the partition yields a product decomposition.
bool VerifyProductDecomposition(
    const Component& c, const std::vector<std::vector<uint32_t>>& groups,
    const std::vector<std::vector<ComponentRow>>& projections, double eps) {
  // Count check: distinct rows of c must equal the product of group sizes.
  // (c is expected deduped; dedup happens in normalization. Recompute the
  // distinct count defensively.)
  std::vector<uint32_t> all(c.NumSlots());
  std::iota(all.begin(), all.end(), 0);
  std::vector<ComponentRow> distinct_rows = ProjectSlotGroup(c, all);
  size_t distinct = distinct_rows.size();
  size_t product = 1;
  for (const auto& proj : projections) {
    if (proj.empty()) return false;
    if (product > distinct / proj.size() + 1) return false;
    product *= proj.size();
    if (product > distinct) return false;
  }
  if (product != distinct) return false;
  // Probability check: every row's probability equals the product of its
  // group-projection marginals. Row probability may appear multiple times
  // if c has duplicate rows; compare against the deduped mass of the row
  // (hash-indexed, so this pass stays linear in rows).
  ProjectionIndex mass_index(distinct_rows);
  std::vector<ProjectionIndex> group_index;
  group_index.reserve(projections.size());
  for (const auto& proj : projections) group_index.emplace_back(proj);
  for (size_t r = 0; r < c.NumRows(); ++r) {
    double expected = 1.0;
    for (size_t g = 0; g < groups.size(); ++g) {
      double pg = group_index[g].Lookup(c, r, groups[g]);
      if (pg < 0.0) return false;
      expected *= pg;
    }
    double mass = mass_index.Lookup(c, r, all);
    if (std::abs(mass - expected) > eps * std::max(1.0, std::abs(expected))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<ComponentRow> ProjectSlotGroup(const Component& c,
                                           const std::vector<uint32_t>& slots) {
  std::vector<ComponentRow> out;
  std::unordered_map<size_t, std::vector<size_t>> seen;
  for (size_t r = 0; r < c.NumRows(); ++r) {
    ComponentRow proj;
    proj.values.reserve(slots.size());
    for (uint32_t s : slots) proj.values.push_back(c.ValueAt(r, s));
    proj.prob = c.prob(r);
    size_t h = proj.values.size();
    for (const auto& v : proj.values) HashCombine(&h, v.Hash());
    auto& bucket = seen[h];
    bool merged = false;
    for (size_t idx : bucket) {
      if (out[idx].values.size() == proj.values.size()) {
        bool eq = true;
        for (size_t i = 0; i < proj.values.size(); ++i) {
          if (!(out[idx].values[i] == proj.values[i])) {
            eq = false;
            break;
          }
        }
        if (eq) {
          out[idx].prob += proj.prob;
          merged = true;
          break;
        }
      }
    }
    if (!merged) {
      bucket.push_back(out.size());
      out.push_back(std::move(proj));
    }
  }
  return out;
}

SlotFactorization FactorizeSlots(const Component& c,
                                 const FactorizeOptions& options) {
  size_t n = c.NumSlots();
  SlotFactorization whole;
  whole.groups.resize(1);
  whole.groups[0].resize(n);
  std::iota(whole.groups[0].begin(), whole.groups[0].end(), 0);
  if (n < 2 || c.NumRows() < 2 || n > options.max_slots) return whole;

  // Group slots by pairwise dependence; the exact product verification
  // below makes this sound even across slots of the same owner (the ⊥
  // existence pattern is part of the joint distribution being checked).
  DenseUnionFind uf(n);
  std::vector<Marginal> marginals(n);
  for (uint32_t s = 0; s < n; ++s) marginals[s] = SlotMarginal(c, s);
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t b = a + 1; b < n; ++b) {
      if (uf.Find(a) == uf.Find(b)) continue;
      if (!PairwiseIndependent(c, a, b, marginals[a], marginals[b],
                               options.eps)) {
        uf.Union(a, b);
      }
    }
  }
  std::map<uint32_t, std::vector<uint32_t>> group_map;
  for (uint32_t s = 0; s < n; ++s) group_map[uf.Find(s)].push_back(s);
  if (group_map.size() < 2) return whole;
  SlotFactorization out;
  out.groups.reserve(group_map.size());
  for (auto& [root, slots] : group_map) out.groups.push_back(std::move(slots));

  out.projections.reserve(out.groups.size());
  for (const auto& g : out.groups) {
    out.projections.push_back(ProjectSlotGroup(c, g));
  }

  if (!VerifyProductDecomposition(c, out.groups, out.projections,
                                  options.eps)) {
    return whole;
  }
  return out;
}

Result<FactorizeStats> Factorize(WsdDb* db, const FactorizeOptions& options) {
  FactorizeStats stats;
  for (ComponentId id : db->LiveComponents()) {
    if (db->component(id).NumSlots() < 2 || db->component(id).NumRows() < 2) {
      continue;
    }
    if (db->component(id).NumSlots() > options.max_slots) continue;
    // Copy: AddComponent below may reallocate the store.
    const Component c = db->component(id);
    stats.rows_before += c.NumRows();

    SlotFactorization f = FactorizeSlots(c, options);
    if (f.groups.size() < 2) {
      stats.rows_after += c.NumRows();
      continue;
    }

    // Materialize the factors and remap template references.
    // old slot -> (new component id, new slot idx)
    size_t n = c.NumSlots();
    std::vector<std::pair<ComponentId, uint32_t>> remap(n);
    for (size_t g = 0; g < f.groups.size(); ++g) {
      Component factor;
      for (size_t i = 0; i < f.groups[g].size(); ++i) {
        factor.AddSlot(c.slot(f.groups[g][i]), Value::Null());
      }
      // AddSlot on an empty component adds no rows; add them now.
      for (auto& row : f.projections[g]) {
        Status st = factor.AddRow(std::move(row));
        MAYBMS_CHECK(st.ok()) << st.ToString();
      }
      Status st = factor.Renormalize();  // guard against eps drift
      MAYBMS_CHECK(st.ok()) << st.ToString();
      stats.rows_after += factor.NumRows();
      ComponentId fid = db->AddComponent(std::move(factor));
      for (size_t i = 0; i < f.groups[g].size(); ++i) {
        remap[f.groups[g][i]] = {fid, static_cast<uint32_t>(i)};
      }
      ++stats.factors_produced;
    }
    for (auto& [key, rel] : db->mutable_relations()) {
      for (auto& t : rel.mutable_tuples()) {
        for (auto& cell : t.cells) {
          if (cell.is_ref() && cell.ref().cid == id) {
            auto [fid, slot] = remap[cell.ref().slot];
            cell.mutable_ref().cid = fid;
            cell.mutable_ref().slot = slot;
          }
        }
      }
    }
    db->RemoveComponent(id);
    ++stats.components_split;
  }
  return stats;
}

}  // namespace maybms
