#include "core/factorize.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace maybms {

namespace {

struct UnionFind {
  std::vector<uint32_t> parent;
  explicit UnionFind(size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  uint32_t Find(uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) { parent[Find(a)] = Find(b); }
};

// Distribution over the values of one slot.
using Marginal = std::map<Value, double>;

Marginal SlotMarginal(const Component& c, uint32_t s) {
  Marginal m;
  for (size_t r = 0; r < c.NumRows(); ++r) m[c.ValueAt(r, s)] += c.prob(r);
  return m;
}

// Tests whether slots a and b are independent: joint == product of
// marginals for every observed pair (and the joint support is the full
// product — checked via the probability equation, which fails on missing
// combinations since those would need probability 0 = pa*pb > 0).
bool PairwiseIndependent(const Component& c, uint32_t a, uint32_t b,
                         const Marginal& ma, const Marginal& mb, double eps) {
  std::map<std::pair<Value, Value>, double> joint;
  for (size_t r = 0; r < c.NumRows(); ++r) {
    joint[{c.ValueAt(r, a), c.ValueAt(r, b)}] += c.prob(r);
  }
  // Support size check: full independence needs |joint| == |ma| * |mb|.
  if (joint.size() != ma.size() * mb.size()) return false;
  for (const auto& [pair, p] : joint) {
    double expected = ma.at(pair.first) * mb.at(pair.second);
    if (std::abs(p - expected) > eps) return false;
  }
  return true;
}

// Projects rows onto a slot group, summing probabilities of equal
// projections. Returns rows in first-occurrence order.
std::vector<ComponentRow> ProjectGroup(const Component& c,
                                       const std::vector<uint32_t>& slots) {
  std::vector<ComponentRow> out;
  std::unordered_map<size_t, std::vector<size_t>> seen;
  for (size_t r = 0; r < c.NumRows(); ++r) {
    ComponentRow proj;
    proj.values.reserve(slots.size());
    for (uint32_t s : slots) proj.values.push_back(c.ValueAt(r, s));
    proj.prob = c.prob(r);
    size_t h = proj.values.size();
    for (const auto& v : proj.values) HashCombine(&h, v.Hash());
    auto& bucket = seen[h];
    bool merged = false;
    for (size_t idx : bucket) {
      if (out[idx].values.size() == proj.values.size()) {
        bool eq = true;
        for (size_t i = 0; i < proj.values.size(); ++i) {
          if (!(out[idx].values[i] == proj.values[i])) {
            eq = false;
            break;
          }
        }
        if (eq) {
          out[idx].prob += proj.prob;
          merged = true;
          break;
        }
      }
    }
    if (!merged) {
      bucket.push_back(out.size());
      out.push_back(std::move(proj));
    }
  }
  return out;
}

// Exact verification that the partition yields a product decomposition.
bool VerifyProductDecomposition(
    const Component& c, const std::vector<std::vector<uint32_t>>& groups,
    const std::vector<std::vector<ComponentRow>>& projections, double eps) {
  // Count check: distinct rows of c must equal the product of group sizes.
  // (c is expected deduped; dedup happens in normalization. Recompute the
  // distinct count defensively.)
  std::vector<uint32_t> all(c.NumSlots());
  std::iota(all.begin(), all.end(), 0);
  size_t distinct = ProjectGroup(c, all).size();
  size_t product = 1;
  for (const auto& proj : projections) {
    if (proj.empty()) return false;
    if (product > distinct / proj.size() + 1) return false;
    product *= proj.size();
    if (product > distinct) return false;
  }
  if (product != distinct) return false;
  // Probability check: every row's probability equals the product of its
  // group-projection marginals.
  for (size_t r = 0; r < c.NumRows(); ++r) {
    double expected = 1.0;
    for (size_t g = 0; g < groups.size(); ++g) {
      // Find the projection entry matching this row.
      double pg = -1.0;
      for (const auto& proj_row : projections[g]) {
        bool eq = true;
        for (size_t i = 0; i < groups[g].size(); ++i) {
          if (!(proj_row.values[i] == c.ValueAt(r, groups[g][i]))) {
            eq = false;
            break;
          }
        }
        if (eq) {
          pg = proj_row.prob;
          break;
        }
      }
      if (pg < 0.0) return false;
      expected *= pg;
    }
    // Row probability may appear multiple times if c has duplicate rows;
    // compare against the deduped mass of this row (packed compares —
    // no materialization in the quadratic part).
    double mass = 0.0;
    for (size_t o = 0; o < c.NumRows(); ++o) {
      bool eq = true;
      for (size_t s = 0; s < c.NumSlots(); ++s) {
        if (!(c.packed(o, s) == c.packed(r, s))) {
          eq = false;
          break;
        }
      }
      if (eq) mass += c.prob(o);
    }
    if (std::abs(mass - expected) > eps * std::max(1.0, std::abs(expected))) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<FactorizeStats> Factorize(WsdDb* db, const FactorizeOptions& options) {
  FactorizeStats stats;
  for (ComponentId id : db->LiveComponents()) {
    if (db->component(id).NumSlots() < 2 || db->component(id).NumRows() < 2) {
      continue;
    }
    if (db->component(id).NumSlots() > options.max_slots) continue;
    // Copy: AddComponent below may reallocate the store.
    const Component c = db->component(id);
    stats.rows_before += c.NumRows();

    // Group slots by pairwise dependence; the exact product verification
    // below makes this sound even across slots of the same owner (the ⊥
    // existence pattern is part of the joint distribution being checked).
    size_t n = c.NumSlots();
    UnionFind uf(n);
    std::vector<Marginal> marginals(n);
    for (uint32_t s = 0; s < n; ++s) marginals[s] = SlotMarginal(c, s);
    for (uint32_t a = 0; a < n; ++a) {
      for (uint32_t b = a + 1; b < n; ++b) {
        if (uf.Find(a) == uf.Find(b)) continue;
        if (!PairwiseIndependent(c, a, b, marginals[a], marginals[b],
                                 options.eps)) {
          uf.Union(a, b);
        }
      }
    }
    std::map<uint32_t, std::vector<uint32_t>> group_map;
    for (uint32_t s = 0; s < n; ++s) group_map[uf.Find(s)].push_back(s);
    if (group_map.size() < 2) {
      stats.rows_after += c.NumRows();
      continue;
    }
    std::vector<std::vector<uint32_t>> groups;
    groups.reserve(group_map.size());
    for (auto& [root, slots] : group_map) groups.push_back(std::move(slots));

    std::vector<std::vector<ComponentRow>> projections;
    projections.reserve(groups.size());
    for (const auto& g : groups) projections.push_back(ProjectGroup(c, g));

    if (!VerifyProductDecomposition(c, groups, projections, options.eps)) {
      stats.rows_after += c.NumRows();
      continue;
    }

    // Materialize the factors and remap template references.
    // old slot -> (new component id, new slot idx)
    std::vector<std::pair<ComponentId, uint32_t>> remap(n);
    for (size_t g = 0; g < groups.size(); ++g) {
      Component factor;
      for (size_t i = 0; i < groups[g].size(); ++i) {
        factor.AddSlot(c.slot(groups[g][i]), Value::Null());
      }
      // AddSlot on an empty component adds no rows; add them now.
      for (auto& row : projections[g]) {
        Status st = factor.AddRow(std::move(row));
        MAYBMS_CHECK(st.ok()) << st.ToString();
      }
      Status st = factor.Renormalize();  // guard against eps drift
      MAYBMS_CHECK(st.ok()) << st.ToString();
      stats.rows_after += factor.NumRows();
      ComponentId fid = db->AddComponent(std::move(factor));
      for (size_t i = 0; i < groups[g].size(); ++i) {
        remap[groups[g][i]] = {fid, static_cast<uint32_t>(i)};
      }
      ++stats.factors_produced;
    }
    for (auto& [key, rel] : db->mutable_relations()) {
      for (auto& t : rel.mutable_tuples()) {
        for (auto& cell : t.cells) {
          if (cell.is_ref() && cell.ref().cid == id) {
            auto [fid, slot] = remap[cell.ref().slot];
            cell.mutable_ref().cid = fid;
            cell.mutable_ref().slot = slot;
          }
        }
      }
    }
    db->RemoveComponent(id);
    ++stats.components_split;
  }
  return stats;
}

}  // namespace maybms
