#include "core/builder.h"

#include <cmath>

#include "common/string_util.h"

namespace maybms {

CellSpec CellSpec::Certain(Value v) {
  CellSpec s;
  s.kind_ = Kind::kCertain;
  s.alts_ = {{std::move(v), 1.0}};
  return s;
}

CellSpec CellSpec::OrSet(std::vector<Alternative> alts) {
  CellSpec s;
  s.kind_ = Kind::kOrSet;
  s.alts_ = std::move(alts);
  return s;
}

CellSpec CellSpec::UniformOrSet(std::vector<Value> values) {
  CellSpec s;
  s.kind_ = Kind::kOrSet;
  double p = values.empty() ? 1.0 : 1.0 / static_cast<double>(values.size());
  for (auto& v : values) s.alts_.push_back({std::move(v), p});
  return s;
}

CellSpec CellSpec::Pending() {
  CellSpec s;
  s.kind_ = Kind::kPending;
  s.alts_ = {{Value::Null(), 1.0}};
  return s;
}

WsdDb FromCatalog(const Catalog& catalog) {
  WsdDb db;
  for (const auto& name : catalog.Names()) {
    const Relation& rel = *catalog.Get(name).value();
    Status st = db.CreateRelation(rel.name(), rel.schema());
    (void)st;
    WsdRelation* wrel = db.GetMutableRelation(rel.name()).value();
    wrel->Reserve(rel.NumRows());
    for (const auto& row : rel.rows()) {
      WsdTuple t;
      t.cells.reserve(row.size());
      for (const auto& v : row) t.cells.push_back(Cell::Certain(v));
      wrel->Add(std::move(t));
    }
  }
  return db;
}

namespace {
Status ValidateAlternatives(const std::vector<Alternative>& alts) {
  if (alts.empty()) {
    return Status::InvalidArgument("or-set with no alternatives");
  }
  double mass = 0.0;
  for (const auto& a : alts) {
    if (a.prob < 0.0 || a.prob > 1.0 + 1e-9) {
      return Status::OutOfRange(
          StrFormat("alternative probability %g outside [0,1]", a.prob));
    }
    if (a.value.is_bottom()) {
      return Status::InvalidArgument("⊥ cannot be an or-set alternative");
    }
    mass += a.prob;
  }
  if (std::abs(mass - 1.0) > 1e-6) {
    return Status::InvalidArgument(
        StrFormat("or-set probabilities sum to %g, expected 1", mass));
  }
  return Status::OK();
}
}  // namespace

Result<TupleHandle> InsertTuple(WsdDb* db, const std::string& relation,
                                std::vector<CellSpec> cells) {
  MAYBMS_ASSIGN_OR_RETURN(WsdRelation * rel, db->GetMutableRelation(relation));
  if (cells.size() != rel->schema().size()) {
    return Status::InvalidArgument(
        StrFormat("tuple has %zu cells, schema %s has %zu", cells.size(),
                  relation.c_str(), rel->schema().size()));
  }
  OwnerId owner = db->NextOwner();
  WsdTuple t;
  t.cells.resize(cells.size());
  bool uncertain = false;
  for (size_t c = 0; c < cells.size(); ++c) {
    const CellSpec& spec = cells[c];
    if (spec.is_certain() || spec.is_pending()) {
      if (spec.is_certain() &&
          !ValueFitsType(spec.value(), rel->schema().attr(c).type)) {
        return Status::TypeMismatch(
            StrFormat("value %s does not fit attribute %s",
                      spec.value().ToString().c_str(),
                      rel->schema().attr(c).name.c_str()));
      }
      t.cells[c] = Cell::Certain(spec.value());
    } else {
      MAYBMS_RETURN_IF_ERROR(ValidateAlternatives(spec.alternatives()));
      Component comp;
      comp.AddSlot(
          {owner, StrFormat("%s[%zu].%s", relation.c_str(), rel->NumTuples(),
                            rel->schema().attr(c).name.c_str())},
          Value::Null());
      for (const auto& alt : spec.alternatives()) {
        if (!ValueFitsType(alt.value, rel->schema().attr(c).type)) {
          return Status::TypeMismatch(
              StrFormat("alternative %s does not fit attribute %s",
                        alt.value.ToString().c_str(),
                        rel->schema().attr(c).name.c_str()));
        }
        MAYBMS_RETURN_IF_ERROR(comp.AddRow({{alt.value}, alt.prob}));
      }
      ComponentId cid = db->AddComponent(std::move(comp));
      t.cells[c] = Cell::Ref({cid, 0});
      uncertain = true;
    }
  }
  if (uncertain) t.deps = {owner};
  TupleHandle handle{relation, rel->NumTuples(), owner};
  rel->Add(std::move(t));
  return handle;
}

Result<ComponentId> AddJointComponent(
    WsdDb* db, const std::vector<FieldSpec>& fields,
    const std::vector<std::pair<std::vector<Value>, double>>& rows) {
  if (fields.empty()) {
    return Status::InvalidArgument("joint component needs at least one field");
  }
  if (rows.empty()) {
    return Status::InvalidArgument("joint component needs at least one row");
  }
  double mass = 0.0;
  for (const auto& [values, p] : rows) {
    if (values.size() != fields.size()) {
      return Status::InvalidArgument(
          StrFormat("joint component row arity %zu != field count %zu",
                    values.size(), fields.size()));
    }
    mass += p;
  }
  if (std::abs(mass - 1.0) > 1e-6) {
    return Status::InvalidArgument(
        StrFormat("joint component probabilities sum to %g", mass));
  }
  Component comp;
  struct Target {
    WsdRelation* rel;
    size_t row;
    size_t col;
    OwnerId owner;
  };
  std::vector<Target> targets;
  for (const auto& f : fields) {
    MAYBMS_ASSIGN_OR_RETURN(WsdRelation * rel,
                            db->GetMutableRelation(f.tuple.relation));
    if (f.tuple.index >= rel->NumTuples()) {
      return Status::OutOfRange(
          StrFormat("tuple index %zu out of range", f.tuple.index));
    }
    MAYBMS_ASSIGN_OR_RETURN(size_t col, rel->schema().Resolve(f.attr));
    const Cell& cell = rel->tuple(f.tuple.index).cells[col];
    if (cell.is_ref()) {
      return Status::InvalidArgument(
          StrFormat("field %s.%s already covered by a component",
                    f.tuple.relation.c_str(), f.attr.c_str()));
    }
    comp.AddSlot({f.tuple.owner,
                  StrFormat("%s[%zu].%s", f.tuple.relation.c_str(),
                            f.tuple.index, f.attr.c_str())},
                 Value::Null());
    targets.push_back({rel, f.tuple.index, col, f.tuple.owner});
  }
  for (const auto& [values, p] : rows) {
    for (size_t i = 0; i < values.size(); ++i) {
      const auto& schema = targets[i].rel->schema();
      if (!values[i].is_bottom() &&
          !ValueFitsType(values[i], schema.attr(targets[i].col).type)) {
        return Status::TypeMismatch(
            StrFormat("joint value %s does not fit attribute %s",
                      values[i].ToString().c_str(),
                      schema.attr(targets[i].col).name.c_str()));
      }
    }
    MAYBMS_RETURN_IF_ERROR(comp.AddRow({values, p}));
  }
  ComponentId cid = db->AddComponent(std::move(comp));
  for (size_t i = 0; i < targets.size(); ++i) {
    WsdTuple& t = targets[i].rel->mutable_tuple(targets[i].row);
    t.cells[targets[i].col] = Cell::Ref({cid, static_cast<uint32_t>(i)});
    t.AddDep(targets[i].owner);
  }
  return cid;
}

Result<ComponentId> MakeCellUncertain(WsdDb* db, const std::string& relation,
                                      size_t row, size_t col,
                                      std::vector<Alternative> alts) {
  MAYBMS_RETURN_IF_ERROR(ValidateAlternatives(alts));
  MAYBMS_ASSIGN_OR_RETURN(WsdRelation * rel, db->GetMutableRelation(relation));
  if (row >= rel->NumTuples()) {
    return Status::OutOfRange(StrFormat("row %zu out of range", row));
  }
  if (col >= rel->schema().size()) {
    return Status::OutOfRange(StrFormat("col %zu out of range", col));
  }
  WsdTuple& t = rel->mutable_tuple(row);
  if (t.cells[col].is_ref()) {
    return Status::InvalidArgument("cell is already uncertain");
  }
  for (const auto& a : alts) {
    if (!ValueFitsType(a.value, rel->schema().attr(col).type)) {
      return Status::TypeMismatch(
          StrFormat("alternative %s does not fit attribute %s",
                    a.value.ToString().c_str(),
                    rel->schema().attr(col).name.c_str()));
    }
  }
  OwnerId owner = t.deps.empty() ? db->NextOwner() : t.deps[0];
  Component comp;
  comp.AddSlot({owner, StrFormat("%s[%zu].%s", relation.c_str(), row,
                                 rel->schema().attr(col).name.c_str())},
               Value::Null());
  for (const auto& alt : alts) {
    MAYBMS_RETURN_IF_ERROR(comp.AddRow({{alt.value}, alt.prob}));
  }
  ComponentId cid = db->AddComponent(std::move(comp));
  t.cells[col] = Cell::Ref({cid, 0});
  t.AddDep(owner);
  return cid;
}

}  // namespace maybms
