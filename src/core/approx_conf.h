// Anytime approximate confidence computation with (ε, δ) guarantees.
//
// Exact confidence (core/confidence.h) enumerates every joint state of
// each independence cluster — exponential in the cluster's factor count.
// This engine keeps the same cluster decomposition (clusters are
// independent, so conf(v) = 1 − Π_c (1 − p_c(v)) and per-cluster errors
// add through the 1-Lipschitz combine) but bounds each cluster's
// per-vector probability p_c(v) by two interleaved anytime methods:
//
//  *Deterministic brackets.* The budgeted odometer visits states in a
//  fixed order; after visiting mass m(v) for vector v with unvisited
//  state mass U, soundly p_c(v) ∈ [m(v), m(v) + U]. Exhausting the
//  cluster collapses the bracket to the exact value.
//
//  *Member marginals (exact fast path).* A member tuple's presence and
//  value vector in a joint state depend only on the rows chosen for the
//  factors it touches, and factors draw independently — so the exact
//  distribution of its vector is the cross product, over its touched
//  factors, of one-pass marginals of its referenced slots (gating
//  applied), scaled by the total mass of the untouched factors. When no
//  value vector is producible by two different members of the cluster,
//  the per-vector cluster probability IS that member marginal: an exact
//  answer in O(Σ touched-factor rows), with no enumeration of the joint
//  state space and no sampling. Clusters whose structure does not
//  cooperate (colliding members, large signature domains) fall back to
//  the two anytime methods below.
//
//  *Monte-Carlo estimation.* Joint states are drawn directly from the
//  product of the factor row distributions (Karp–Luby-style importance
//  sampling normalized by W = Π factor masses, so sub-normalized
//  components stay unbiased: E[W·hits(v)/n] = p_c(v)). A Hoeffding
//  interval of half-width hw = W·sqrt(ln(2·V_c/δ_c) / 2n) covers all
//  V_c producible vectors of the cluster simultaneously with
//  probability ≥ 1 − δ_c (union bound; V_c is itself bounded by the
//  per-member product of referenced-slot distinct counts).
//
// Each cluster stops as soon as either half-width (U/2 or hw) is ≤ ε_c,
// where ε_c = ε/K and δ_c = δ/K over the K non-exact clusters; tiny
// clusters (state space ≤ exact_state_limit) are enumerated exactly up
// front. The reported per-vector interval [conf_lo, conf_hi] therefore
// contains the exact confidence with probability ≥ 1 − δ and has
// half-width ≤ ε whenever the sample/state budgets were not exhausted
// (anytime: on budget exhaustion the interval is still sound, just
// wider).
//
// Determinism contract: for a fixed seed the result is bit-identical
// regardless of thread count. Sampling is performed in fixed-size
// batches whose RNGs derive from Rng::Split of a per-cluster base
// stream by global batch index; hit counts are integers (merging is
// order-independent); enumeration advances in a single task; stopping
// rules are evaluated only at round barriers on fully merged state.
#ifndef MAYBMS_CORE_APPROX_CONF_H_
#define MAYBMS_CORE_APPROX_CONF_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "core/wsd.h"

namespace maybms {

class MaterializedConf;  // core/materialized_conf.h

/// Tuning knobs of the approximate confidence engine (the ε/δ pair is
/// the user-facing contract; the rest are resource budgets).
struct ApproxOptions {
  /// Target half-width of the reported confidence interval.
  double epsilon = 0.01;
  /// Probability that some reported interval misses the exact value.
  double delta = 0.05;
  /// Seed of the deterministic sampling streams.
  uint64_t seed = 42;
  /// Worker threads (0 = hardware default). Never affects results.
  size_t num_threads = 0;
  /// Clusters whose joint state space is at most this many states are
  /// enumerated exactly (they contribute zero error).
  size_t exact_state_limit = 4096;
  /// States enumerated per anytime round (bracket refinement).
  size_t enum_chunk = 1024;
  /// Samples drawn per anytime round (across parallel batches).
  size_t sample_chunk = 8192;
  /// Per-cluster sample budget; reaching it widens the interval
  /// honestly instead of failing.
  size_t max_samples = size_t{1} << 22;
  /// Per-cluster enumeration budget (states).
  size_t max_enum_states = size_t{1} << 20;
  /// Locally factorize components first (see ClusterIndexOptions).
  /// Off by default: sampling does not need factorization, and the
  /// factorization pass itself dominates exactly the regimes this
  /// engine exists to rescue.
  bool factorize_clusters = false;
  /// Exact per-member marginal fast path (see the header comment): try
  /// to resolve each non-tiny cluster exactly from one-pass factor
  /// marginals before falling back to enumeration + sampling. Disable
  /// to force the anytime machinery (tests, diagnostics).
  bool member_marginals = true;
  /// Pure-frequency mode: skip enumeration and brackets, estimate every
  /// cluster by sampling alone and report the raw unclamped estimator
  /// (whose product combine is exactly unbiased). Used by the
  /// statistical tests and the worlds/sample streaming estimator.
  bool sampling_only = false;
  /// When nonzero, draw exactly this many samples per non-exact cluster
  /// instead of deriving the count from ε/δ.
  size_t fixed_samples = 0;
  /// Optional content-keyed cache (core/materialized_conf.h) of the
  /// tiny clusters' exact mass maps. Only the exact phase consults it —
  /// anytime clusters depend on the ε/δ split and the seed-derived
  /// sample streams, so their intervals are not pure functions of
  /// content. Results are bit-identical with and without. Not owned.
  MaterializedConf* cache = nullptr;
};

/// How a cluster's probabilities were obtained.
enum class ClusterPath {
  kExact,    ///< full enumeration (tiny cluster or bracket collapsed)
  kBracket,  ///< partial enumeration; bracket reached ε_c first
  kSampled,  ///< Monte-Carlo CI reached ε_c first (or budgets ran out)
};

/// Execution telemetry of one ApproxConfTable call.
struct ApproxConfStats {
  size_t clusters = 0;          ///< independence clusters evaluated
  size_t exact_clusters = 0;    ///< resolved on ClusterPath::kExact
  size_t bracket_clusters = 0;  ///< resolved on ClusterPath::kBracket
  size_t sampled_clusters = 0;  ///< resolved on ClusterPath::kSampled
  uint64_t total_samples = 0;   ///< Monte-Carlo states drawn
  uint64_t total_states = 0;    ///< joint states enumerated
  /// Largest per-cluster half-width at stop (> ε/K means some budget
  /// was exhausted before the target precision).
  double max_half_width = 0.0;
};

/// Approximate confidence table of template relation `rel_name`:
/// the relation's columns plus `conf` (point estimate), `conf_lo` and
/// `conf_hi` (interval bounds; see the determinism and coverage
/// contract above), sorted by conf descending then by value vector.
/// Column names are suffixed on collision, mirroring ConfTable.
Result<Relation> ApproxConfTable(const WsdDb& db, const std::string& rel_name,
                                 const ApproxOptions& options = {},
                                 ApproxConfStats* stats = nullptr);

}  // namespace maybms

#endif  // MAYBMS_CORE_APPROX_CONF_H_
