// Shared machinery of the lifted operators. Internal header — not part of
// the public API.
#ifndef MAYBMS_CORE_LIFTED_INTERNAL_H_
#define MAYBMS_CORE_LIFTED_INTERNAL_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/wsd.h"
#include "ra/expr.h"
#include "ra/expr_compile.h"

namespace maybms {
namespace lifted_internal {

/// Number of tuples (across the whole database) whose deps contain each
/// owner. Owners with count 1 admit the paper-style in-place ⊥ marking.
std::unordered_map<OwnerId, size_t> CountOwnerUsage(const WsdDb& db);

/// Components that contain at least one slot owned by one of `owners`
/// (sorted). These gate the existence of tuples depending on the owners.
std::vector<ComponentId> ComponentsGatingOwners(
    const WsdDb& db, const std::vector<OwnerId>& owners);

/// Components that both gate one of `owners` and contain ⊥ on an owned
/// slot — the only ones that can make a dependent tuple dead. (After
/// plain or-set insertion there are none.)
std::vector<ComponentId> BottomGatingComponents(
    const WsdDb& db, const std::vector<OwnerId>& owners);

/// True when a tuple with these deps exists in every world (no component
/// carries ⊥ on a dep-owned slot).
bool AlwaysAlive(const WsdDb& db, const std::vector<OwnerId>& deps);

/// owner -> components carrying ⊥ on a slot owned by that owner. Build
/// once per operator; per-tuple queries then cost O(|deps|).
using BottomGatingIndex =
    std::unordered_map<OwnerId, std::vector<ComponentId>>;
BottomGatingIndex BuildBottomGatingIndex(const WsdDb& db);

/// Gating components of `deps` via the index (sorted, deduplicated).
std::vector<ComponentId> LookupBottomGating(
    const BottomGatingIndex& index, const std::vector<OwnerId>& deps);

/// A template cell resolved for packed row kernels over one component:
/// either a pre-packed certain value (strings interned once, not per
/// row) or the component slot the cell reads. Shared by the FD/key
/// conditioner and the match-kill backbone.
struct PackedCellView {
  bool certain = false;
  PackedValue value;
  uint32_t slot = 0;
};

/// Packs one cell. When `expect_cid` != kInvalidComponent, ref cells
/// must point into that component (checked).
PackedCellView MakeCellView(const Cell& cell, ComponentId expect_cid);

/// Binds a compiled program's input slots against one component: inputs
/// listed in `ref_cols` (bound column -> component slot) read the packed
/// component column in place, all other (certain) inputs are packed from
/// `eval_buf` once and broadcast. `broadcast` is the stable backing store
/// for the packed certains; it must outlive the evaluation.
void BindComponentInputs(
    const Component& m, const CompiledExpr& prog,
    const std::vector<std::pair<size_t, uint32_t>>& ref_cols,
    const Tuple& eval_buf, std::vector<ExprInput>* inputs,
    std::vector<PackedValue>* broadcast);

/// A lowered expression with reusable evaluation scratch (registers,
/// result/fallback buffers): one instance is shared across the per-tuple
/// batches of an operator so the hot loop never reallocates. Heap-pinned
/// (unique_ptr, non-movable) because the evaluator points into `prog`.
struct CompiledEval {
  explicit CompiledEval(CompiledExpr p) : prog(std::move(p)), eval(&prog) {}
  CompiledEval(const CompiledEval&) = delete;
  CompiledEval& operator=(const CompiledEval&) = delete;

  CompiledExpr prog;
  ExprBatchEvaluator eval;
  std::vector<ExprInput> inputs;
  std::vector<PackedValue> broadcast;
  std::vector<PackedValue> results;
  std::vector<size_t> fallback;
};
using CompiledEvalPtr = std::unique_ptr<CompiledEval>;

/// Lowers `e` when compilation is enabled and possible; nullptr otherwise.
CompiledEvalPtr TryCompile(const Expr& e, const ExecOptions& opts);

/// Evaluates ce->prog over every row of `m` (ref_cols/eval_buf as in
/// BindComponentInputs), sharding over the thread pool for batches at or
/// above opts.parallel_row_threshold. Fills ce->results (NumRows entries)
/// and ce->fallback (ascending row indexes needing Expr::Eval).
void EvalOverComponent(const Component& m,
                       const std::vector<std::pair<size_t, uint32_t>>& ref_cols,
                       const Tuple& eval_buf, const ExecOptions& opts,
                       CompiledEval* ce);

/// True when every cell of the tuple is certain.
bool FullyCertain(const WsdTuple& t);

/// True when both tuples are fully certain with equal values.
bool CertainlyEqual(const WsdTuple& a, const WsdTuple& b);

/// Disjoint-set merge planner: operators register groups of components
/// that must end up in one component; Execute() merges each connected
/// group once and remaps all template cells in a single pass.
class MergePlanner {
 public:
  /// Registers that all components in `cids` must be merged together.
  void Require(const std::vector<ComponentId>& cids);

  /// Performs the merges. After this call, Resolve() maps any registered
  /// component to its merged component.
  Status Execute(WsdDb* db);

  /// The merged id for `cid` (identity when never registered).
  ComponentId Resolve(ComponentId cid) const;

  bool executed() const { return executed_; }

 private:
  ComponentId Find(ComponentId c);
  std::unordered_map<ComponentId, ComponentId> parent_;
  std::unordered_map<ComponentId, ComponentId> merged_;  // root -> new id
  bool executed_ = false;
};

/// Filters the tuples of `rel_name` in place by a predicate already bound
/// against the relation's schema: tuples are kept exactly in the worlds
/// where the predicate evaluates to true. Implements the paper's
/// selection, including component merging for multi-component predicates.
///
/// The per-world evaluation loops run on the compiled vectorized
/// evaluator (ra/expr_compile.h) directly over the component's packed
/// columns when `opts.compile_expressions` is set and the predicate
/// compiles; otherwise (and for rows the compiled program cannot decide)
/// they fall back to Expr::Eval row by row, so the two modes agree by
/// construction.
Status FilterRelationInPlace(WsdDb* db, const std::string& rel_name,
                             const ExprPtr& bound_pred,
                             const ExecOptions& opts = {});

/// The distinct non-⊥ values a cell can take (single value for certain
/// cells, slot values otherwise).
std::vector<Value> PossibleCellValues(const WsdDb& db, const Cell& cell);

/// True when two cells can hold equal values in some world (conservative:
/// may return true for cells that never coexist).
bool CellsPossiblyEqual(const WsdDb& db, const Cell& a, const Cell& b);

/// Adds to each tuple listed in `targets` an existence slot that kills it
/// in exactly the worlds where some of its `sources` tuples is alive
/// (w.r.t. the snapshot deps) and has values equal to the target's.
/// Shared backbone of LiftedDifference and LiftedDistinct.
struct MatchKillSpec {
  std::string target_rel;
  size_t target_idx = 0;
  /// Sources: (relation, tuple index, snapshot deps to use for aliveness).
  struct Source {
    std::string rel;
    size_t idx = 0;
    std::vector<OwnerId> deps;
  };
  std::vector<Source> sources;
};

Status ApplyMatchKills(WsdDb* db, const std::vector<MatchKillSpec>& specs);

}  // namespace lifted_internal
}  // namespace maybms

#endif  // MAYBMS_CORE_LIFTED_INTERNAL_H_
