#include "core/component.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "common/logging.h"

#include "common/hash.h"
#include "common/string_util.h"

namespace maybms {

Value ExistsToken() { return Value::Bool(true); }

uint32_t Component::AddSlot(Slot slot, const Value& fill) {
  slots_.push_back(std::move(slot));
  for (auto& row : rows_) row.values.push_back(fill);
  return static_cast<uint32_t>(slots_.size() - 1);
}

uint32_t Component::AddSlotWithValues(Slot slot, std::vector<Value> values) {
  MAYBMS_DCHECK(values.size() == rows_.size());
  slots_.push_back(std::move(slot));
  for (size_t i = 0; i < rows_.size(); ++i) {
    rows_[i].values.push_back(std::move(values[i]));
  }
  return static_cast<uint32_t>(slots_.size() - 1);
}

Status Component::AddRow(ComponentRow row) {
  if (row.values.size() != slots_.size()) {
    return Status::InvalidArgument(
        StrFormat("component row arity %zu != slot count %zu",
                  row.values.size(), slots_.size()));
  }
  if (row.prob < 0.0 || row.prob > 1.0 + 1e-9) {
    return Status::OutOfRange(
        StrFormat("row probability %g outside [0,1]", row.prob));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

double Component::TotalMass() const {
  double total = 0.0;
  for (const auto& row : rows_) total += row.prob;
  return total;
}

Status Component::Renormalize() {
  double mass = TotalMass();
  if (mass <= 0.0) {
    return Status::Inconsistent("component has zero probability mass");
  }
  for (auto& row : rows_) row.prob /= mass;
  return Status::OK();
}

void Component::DedupRows() {
  std::unordered_map<size_t, std::vector<size_t>> seen;  // hash -> kept idx
  std::vector<ComponentRow> kept;
  kept.reserve(rows_.size());
  for (auto& row : rows_) {
    size_t h = row.values.size();
    for (const auto& v : row.values) HashCombine(&h, v.Hash());
    auto& bucket = seen[h];
    bool merged = false;
    for (size_t idx : bucket) {
      if (kept[idx].values.size() == row.values.size()) {
        bool eq = true;
        for (size_t i = 0; i < row.values.size(); ++i) {
          if (!(kept[idx].values[i] == row.values[i])) {
            eq = false;
            break;
          }
        }
        if (eq) {
          kept[idx].prob += row.prob;
          merged = true;
          break;
        }
      }
    }
    if (!merged) {
      bucket.push_back(kept.size());
      kept.push_back(std::move(row));
    }
  }
  rows_ = std::move(kept);
}

void Component::DropSlots(const std::vector<uint32_t>& sorted_slots) {
  if (sorted_slots.empty()) return;
  std::vector<bool> drop(slots_.size(), false);
  for (uint32_t s : sorted_slots) {
    MAYBMS_DCHECK(s < slots_.size());
    drop[s] = true;
  }
  std::vector<Slot> new_slots;
  new_slots.reserve(slots_.size() - sorted_slots.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!drop[i]) new_slots.push_back(std::move(slots_[i]));
  }
  slots_ = std::move(new_slots);
  for (auto& row : rows_) {
    std::vector<Value> nv;
    nv.reserve(slots_.size());
    for (size_t i = 0; i < row.values.size(); ++i) {
      if (!drop[i]) nv.push_back(std::move(row.values[i]));
    }
    row.values = std::move(nv);
  }
  DedupRows();
}

void Component::DropZeroRows(double eps) {
  rows_.erase(std::remove_if(rows_.begin(), rows_.end(),
                             [eps](const ComponentRow& r) {
                               return r.prob <= eps;
                             }),
              rows_.end());
}

Result<Component> Component::Product(const Component& a, const Component& b,
                                     size_t max_rows) {
  size_t n = a.NumRows() * b.NumRows();
  if (a.NumRows() != 0 && n / a.NumRows() != b.NumRows()) {
    return Status::ResourceExhausted("component product row count overflow");
  }
  if (n > max_rows) {
    return Status::ResourceExhausted(
        StrFormat("component product would have %zu rows (budget %zu)", n,
                  max_rows));
  }
  Component out;
  out.slots_ = a.slots_;
  out.slots_.insert(out.slots_.end(), b.slots_.begin(), b.slots_.end());
  out.rows_.reserve(n);
  for (const auto& ra : a.rows_) {
    for (const auto& rb : b.rows_) {
      ComponentRow row;
      row.values.reserve(ra.values.size() + rb.values.size());
      row.values.insert(row.values.end(), ra.values.begin(), ra.values.end());
      row.values.insert(row.values.end(), rb.values.begin(), rb.values.end());
      row.prob = ra.prob * rb.prob;
      out.rows_.push_back(std::move(row));
    }
  }
  return out;
}

uint64_t Component::SerializedSize() const {
  uint64_t total = 0;
  for (const auto& row : rows_) {
    total += 4 + 8;  // row header + probability
    for (const auto& v : row.values) total += v.SerializedSize();
  }
  return total;
}

std::string Component::ToString() const {
  std::vector<size_t> width(slots_.size());
  for (size_t c = 0; c < slots_.size(); ++c) width[c] = slots_[c].label.size();
  std::vector<std::vector<std::string>> cells(rows_.size());
  std::vector<std::string> probs(rows_.size());
  size_t pwidth = 1;
  for (size_t r = 0; r < rows_.size(); ++r) {
    cells[r].resize(slots_.size());
    for (size_t c = 0; c < slots_.size(); ++c) {
      cells[r][c] = rows_[r].values[c].ToString();
      // ⊥ renders as 3 UTF-8 bytes but 1 column; compensate.
      size_t render = cells[r][c] == "\xE2\x8A\xA5" ? 1 : cells[r][c].size();
      width[c] = std::max(width[c], render);
    }
    probs[r] = StrFormat("%.4g", rows_[r].prob);
    pwidth = std::max(pwidth, probs[r].size());
  }
  std::string out;
  for (size_t c = 0; c < slots_.size(); ++c) {
    out += PadRight(slots_[c].label, width[c]) + "  ";
  }
  out += PadRight("p", pwidth) + "\n";
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t c = 0; c < slots_.size(); ++c) {
      std::string cell = cells[r][c];
      size_t render = cell == "\xE2\x8A\xA5" ? 1 : cell.size();
      out += cell + std::string(width[c] - render + 2, ' ');
    }
    out += probs[r] + "\n";
  }
  return out;
}

}  // namespace maybms
