#include "core/component.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace maybms {

Value ExistsToken() { return Value::Bool(true); }

ComponentRow Component::GetRow(size_t r) const {
  ComponentRow row;
  row.values.reserve(slots_.size());
  for (size_t s = 0; s < slots_.size(); ++s) {
    row.values.push_back(cols_[s][r].ToValue());
  }
  row.prob = probs_[r];
  return row;
}

Status Component::AddRow(ComponentRow row) {
  if (row.values.size() != slots_.size()) {
    return Status::InvalidArgument(
        StrFormat("component row arity %zu != slot count %zu",
                  row.values.size(), slots_.size()));
  }
  if (row.prob < 0.0 || row.prob > 1.0 + 1e-9) {
    return Status::OutOfRange(
        StrFormat("row probability %g outside [0,1]", row.prob));
  }
  InvalidateStats();
  for (size_t s = 0; s < slots_.size(); ++s) {
    cols_[s].push_back(PackedValue::FromValue(row.values[s]));
  }
  probs_.push_back(row.prob);
  return Status::OK();
}

Status Component::AddPackedRow(const std::vector<PackedValue>& values,
                               double prob) {
  if (values.size() != slots_.size()) {
    return Status::InvalidArgument(
        StrFormat("component row arity %zu != slot count %zu", values.size(),
                  slots_.size()));
  }
  if (prob < 0.0 || prob > 1.0 + 1e-9) {
    return Status::OutOfRange(
        StrFormat("row probability %g outside [0,1]", prob));
  }
  InvalidateStats();
  for (size_t s = 0; s < slots_.size(); ++s) cols_[s].push_back(values[s]);
  probs_.push_back(prob);
  return Status::OK();
}

uint32_t Component::AddSlot(Slot slot, const Value& fill) {
  InvalidateStats();
  slots_.push_back(std::move(slot));
  cols_.emplace_back(NumRows(), PackedValue::FromValue(fill));
  return static_cast<uint32_t>(slots_.size() - 1);
}

uint32_t Component::AddSlotWithValues(Slot slot, std::vector<Value> values) {
  MAYBMS_DCHECK(values.size() == NumRows());
  std::vector<PackedValue> column;
  column.reserve(values.size());
  for (const Value& v : values) column.push_back(PackedValue::FromValue(v));
  return AddSlotWithPacked(std::move(slot), std::move(column));
}

uint32_t Component::AddSlotWithPacked(Slot slot,
                                      std::vector<PackedValue> column) {
  MAYBMS_DCHECK(column.size() == NumRows());
  InvalidateStats();
  slots_.push_back(std::move(slot));
  cols_.push_back(std::move(column));
  return static_cast<uint32_t>(slots_.size() - 1);
}

Result<Component> Component::FromColumns(
    std::vector<Slot> slots, std::vector<std::vector<PackedValue>> cols,
    std::vector<double> probs) {
  if (cols.size() != slots.size()) {
    return Status::InvalidArgument(
        StrFormat("component column count %zu != slot count %zu", cols.size(),
                  slots.size()));
  }
  for (const auto& col : cols) {
    if (col.size() != probs.size()) {
      return Status::InvalidArgument(
          StrFormat("component column length %zu != row count %zu",
                    col.size(), probs.size()));
    }
  }
  for (double p : probs) {
    if (!(p >= 0.0 && p <= 1.0 + 1e-9)) {
      return Status::OutOfRange(
          StrFormat("row probability %g outside [0,1]", p));
    }
  }
  Component c;
  c.slots_ = std::move(slots);
  c.cols_ = std::move(cols);
  c.probs_ = std::move(probs);
  return c;
}

double Component::TotalMass() const {
  double total = 0.0;
  for (double p : probs_) total += p;
  return total;
}

Status Component::Renormalize() {
  double mass = TotalMass();
  if (mass <= 0.0) {
    return Status::Inconsistent("component has zero probability mass");
  }
  InvalidateContentHash();  // stats survive: row/distinct counts unchanged
  double inv = 1.0 / mass;
  for (double& p : probs_) p *= inv;
  return Status::OK();
}

void Component::DedupRows() {
  const size_t n = NumRows();
  const size_t k = NumSlots();
  if (n < 2) return;

  // Row hashes, accumulated column-by-column for cache locality (every
  // row combines its slots in the same 0..k-1 order).
  std::vector<size_t> hashes(n, k);
  for (size_t s = 0; s < k; ++s) {
    const std::vector<PackedValue>& col = cols_[s];
    for (size_t r = 0; r < n; ++r) HashCombine(&hashes[r], col[r].Hash());
  }

  // Open-addressed table of kept-row handles: no per-row heap allocation.
  size_t cap = 16;
  while (cap < 2 * n) cap <<= 1;
  constexpr uint32_t kEmpty = UINT32_MAX;
  std::vector<uint32_t> table(cap, kEmpty);  // slot -> index into `keep`
  std::vector<uint32_t> keep;                // kept original row indexes
  std::vector<double> new_probs;
  keep.reserve(n);
  new_probs.reserve(n);

  bool any_dup = false;
  const size_t mask = cap - 1;
  for (size_t r = 0; r < n; ++r) {
    size_t pos = hashes[r] & mask;
    uint32_t found = kEmpty;
    while (table[pos] != kEmpty) {
      uint32_t cand = table[pos];
      uint32_t orig = keep[cand];
      if (hashes[orig] == hashes[r]) {
        bool eq = true;
        for (size_t s = 0; s < k; ++s) {
          if (!(cols_[s][orig] == cols_[s][r])) {
            eq = false;
            break;
          }
        }
        if (eq) {
          found = cand;
          break;
        }
      }
      pos = (pos + 1) & mask;
    }
    if (found != kEmpty) {
      new_probs[found] += probs_[r];
      any_dup = true;
    } else {
      table[pos] = static_cast<uint32_t>(keep.size());
      keep.push_back(static_cast<uint32_t>(r));
      new_probs.push_back(probs_[r]);
    }
  }
  if (!any_dup) return;

  // Gather the kept rows in place (keep is strictly ascending), then
  // install the merged probabilities.
  KeepRows(keep);
  probs_ = std::move(new_probs);
}

void Component::DropSlots(const std::vector<uint32_t>& sorted_slots) {
  if (sorted_slots.empty()) return;
  InvalidateStats();
  // Columnar marginalization: dropping a slot is dropping its column —
  // no per-row work at all; the dedup afterwards merges the projections.
  std::vector<bool> drop(slots_.size(), false);
  for (uint32_t s : sorted_slots) {
    MAYBMS_DCHECK(s < slots_.size());
    drop[s] = true;
  }
  size_t kept = 0;
  for (size_t s = 0; s < slots_.size(); ++s) {
    if (drop[s]) continue;
    if (kept != s) {
      slots_[kept] = std::move(slots_[s]);
      cols_[kept] = std::move(cols_[s]);
    }
    ++kept;
  }
  slots_.resize(kept);
  cols_.resize(kept);
  DedupRows();
}

void Component::KeepRows(const std::vector<uint32_t>& keep) {
  MAYBMS_DCHECK(std::is_sorted(keep.begin(), keep.end()));
  if (keep.size() == NumRows()) return;
  InvalidateStats();
  for (size_t s = 0; s < cols_.size(); ++s) {
    std::vector<PackedValue>& col = cols_[s];
    for (size_t i = 0; i < keep.size(); ++i) col[i] = col[keep[i]];
    col.resize(keep.size());
  }
  for (size_t i = 0; i < keep.size(); ++i) probs_[i] = probs_[keep[i]];
  probs_.resize(keep.size());
}

void Component::DropZeroRows(double eps) {
  std::vector<uint32_t> keep;
  keep.reserve(NumRows());
  for (size_t r = 0; r < NumRows(); ++r) {
    if (probs_[r] > eps) keep.push_back(static_cast<uint32_t>(r));
  }
  KeepRows(keep);
}

Result<Component> Component::Product(const Component& a, const Component& b,
                                     size_t max_rows) {
  const size_t an = a.NumRows(), bn = b.NumRows();
  size_t n = an * bn;
  if (an != 0 && n / an != bn) {
    return Status::ResourceExhausted("component product row count overflow");
  }
  if (n > max_rows) {
    return Status::ResourceExhausted(
        StrFormat("component product would have %zu rows (budget %zu)", n,
                  max_rows));
  }
  Component out;
  out.slots_ = a.slots_;
  out.slots_.insert(out.slots_.end(), b.slots_.begin(), b.slots_.end());
  out.cols_.resize(out.slots_.size());
  // Left columns: each value repeated bn times. Right columns: the whole
  // column tiled an times. Pure memcpy-able appends, no per-row alloc.
  for (size_t s = 0; s < a.cols_.size(); ++s) {
    std::vector<PackedValue>& col = out.cols_[s];
    col.reserve(n);
    for (size_t i = 0; i < an; ++i) col.insert(col.end(), bn, a.cols_[s][i]);
  }
  for (size_t s = 0; s < b.cols_.size(); ++s) {
    std::vector<PackedValue>& col = out.cols_[a.cols_.size() + s];
    col.reserve(n);
    for (size_t i = 0; i < an; ++i) {
      col.insert(col.end(), b.cols_[s].begin(), b.cols_[s].end());
    }
  }
  out.probs_.reserve(n);
  for (size_t i = 0; i < an; ++i) {
    const double pa = a.probs_[i];
    for (size_t j = 0; j < bn; ++j) out.probs_.push_back(pa * b.probs_[j]);
  }
  return out;
}

const ComponentStats& Component::GetStats() const {
  std::shared_ptr<const ComponentStats> cached = std::atomic_load(&stats_);
  if (cached != nullptr) return *cached;
  auto s = std::make_shared<ComponentStats>();
  s->rows = NumRows();
  s->distinct.assign(slots_.size(), 0);
  std::unordered_set<PackedValue, PackedValueHash> seen;
  for (size_t c = 0; c < cols_.size(); ++c) {
    seen.clear();
    seen.insert(cols_[c].begin(), cols_[c].end());
    s->distinct[c] = seen.size();
  }
  // Install-if-absent: racing readers compute identical stats, the first
  // CAS wins and everyone returns the winning object. The reference stays
  // valid because only mutation (exclusive by contract) clears stats_.
  std::shared_ptr<const ComponentStats> expected;
  std::shared_ptr<const ComponentStats> fresh = std::move(s);
  if (std::atomic_compare_exchange_strong(&stats_, &expected, fresh)) {
    return *fresh;
  }
  return *expected;
}

uint64_t Component::ContentHash() const {
  uint64_t cached = content_hash_.load(std::memory_order_acquire);
  if (cached != 0) return cached;
  size_t seed = slots_.size();
  HashCombine(&seed, probs_.size());
  for (const Slot& s : slots_) {
    HashCombine(&seed, static_cast<size_t>(s.owner));
  }
  for (const auto& col : cols_) {
    for (const PackedValue& v : col) HashCombine(&seed, v.Hash());
  }
  for (double p : probs_) {
    uint64_t bits;
    std::memcpy(&bits, &p, sizeof(bits));
    HashCombine(&seed, static_cast<size_t>(bits));
  }
  uint64_t h = static_cast<uint64_t>(seed);
  if (h == 0) h = 1;  // 0 is the "unset" sentinel
  // Racing readers compute the same value; last store wins, harmlessly.
  content_hash_.store(h, std::memory_order_release);
  return h;
}

namespace {

// Bytes of one packed cell in the flat serialized model (1 tag byte +
// payload; strings add a 4-byte length prefix), matching
// Value::SerializedSize for the same logical value.
uint64_t FlatCellSize(const PackedValue& v) {
  switch (v.tag()) {
    case PackedTag::kNull:
    case PackedTag::kBottom:
      return 1;
    case PackedTag::kBool:
      return 2;
    case PackedTag::kInt:
    case PackedTag::kDouble:
      return 9;
    case PackedTag::kString:
      return 1 + 4 + v.as_string().size();
  }
  return 1;
}

}  // namespace

uint64_t Component::SerializedSize() const {
  uint64_t total = NumRows() * (4ull + 8ull);  // row header + probability
  for (const auto& col : cols_) {
    for (const PackedValue& v : col) total += FlatCellSize(v);
  }
  return total;
}

uint64_t Component::InternedSize() const {
  uint64_t total = 0;
  for (const auto& col : cols_) total += col.size() * sizeof(PackedValue);
  total += probs_.size() * sizeof(double);
  for (const Slot& s : slots_) total += sizeof(Slot) + s.label.size();
  return total;
}

void Component::CollectStrings(
    std::unordered_set<std::string_view>* out) const {
  for (const auto& col : cols_) {
    for (const PackedValue& v : col) {
      if (v.is_string()) out->insert(v.as_string());
    }
  }
}

std::string Component::ToString() const {
  std::vector<size_t> width(slots_.size());
  for (size_t c = 0; c < slots_.size(); ++c) width[c] = slots_[c].label.size();
  std::vector<std::vector<std::string>> cells(NumRows());
  std::vector<std::string> probs(NumRows());
  size_t pwidth = 1;
  for (size_t r = 0; r < NumRows(); ++r) {
    cells[r].resize(slots_.size());
    for (size_t c = 0; c < slots_.size(); ++c) {
      cells[r][c] = cols_[c][r].ToValue().ToString();
      // ⊥ renders as 3 UTF-8 bytes but 1 column; compensate.
      size_t render = cells[r][c] == "\xE2\x8A\xA5" ? 1 : cells[r][c].size();
      width[c] = std::max(width[c], render);
    }
    probs[r] = StrFormat("%.4g", probs_[r]);
    pwidth = std::max(pwidth, probs[r].size());
  }
  std::string out;
  for (size_t c = 0; c < slots_.size(); ++c) {
    out += PadRight(slots_[c].label, width[c]) + "  ";
  }
  out += PadRight("p", pwidth) + "\n";
  for (size_t r = 0; r < NumRows(); ++r) {
    for (size_t c = 0; c < slots_.size(); ++c) {
      std::string cell = cells[r][c];
      size_t render = cell == "\xE2\x8A\xA5" ? 1 : cell.size();
      out += cell + std::string(width[c] - render + 2, ' ');
    }
    out += probs[r] + "\n";
  }
  return out;
}

}  // namespace maybms
