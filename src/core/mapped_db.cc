#include "core/mapped_db.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>

#include "common/hash.h"
#include "common/string_util.h"
#include "storage/value_pool.h"

namespace maybms {

namespace {

namespace sv3 = snapshotv3;

constexpr char kHeaderV3[] = "MAYBMS-WSD 3\n";

size_t ResolveResidentCap(size_t requested) {
  if (requested != 0) return requested;
  const char* env = std::getenv("MAYBMS_MAX_RESIDENT_BYTES");
  if (env == nullptr || *env == '\0') {
    return std::numeric_limits<size_t>::max();
  }
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || v == 0) return std::numeric_limits<size_t>::max();
  return static_cast<size_t>(v);
}

Status CheckBlockBounds(std::string_view payload, uint64_t offset,
                        uint64_t length, const char* what) {
  if (offset % 8 != 0) {
    return Status::ParseError(
        StrFormat("snapshot %s block offset not 8-aligned", what));
  }
  if (offset > payload.size() || length > payload.size() - offset) {
    return Status::ParseError(
        StrFormat("snapshot %s block out of bounds", what));
  }
  return Status::OK();
}

/// Scans of one relation collected from a plan: each Select chain
/// directly above a Scan contributes one conjunctive bound set; a bare
/// Scan (or one under operators we do not analyze) keeps every shard.
struct ScanUse {
  bool keep_all = false;
  std::vector<std::vector<ColumnBound>> bound_sets;
};

void IntersectInto(std::vector<ColumnBound>* acc,
                   const std::vector<ColumnBound>& b) {
  for (size_t c = 0; c < acc->size(); ++c) {
    if (!b[c].active) continue;
    (*acc)[c].active = true;
    (*acc)[c].lo = std::max((*acc)[c].lo, b[c].lo);
    (*acc)[c].hi = std::min((*acc)[c].hi, b[c].hi);
  }
}

void CollectScans(const Plan& p, const WsdDb& skeleton,
                  std::map<std::string, ScanUse>* uses) {
  if (p.kind() == PlanKind::kScan) {
    (*uses)[p.relation()].keep_all = true;
    return;
  }
  if (p.kind() == PlanKind::kSelect) {
    // Follow the Select chain down; if it bottoms out at a Scan, the
    // conjunction of every predicate on the chain bounds that scan.
    std::vector<ExprPtr> preds;
    const Plan* n = &p;
    while (n->kind() == PlanKind::kSelect) {
      preds.push_back(n->predicate());
      n = n->input().get();
    }
    if (n->kind() == PlanKind::kScan) {
      ScanUse& u = (*uses)[n->relation()];
      Result<const WsdRelation*> rel = skeleton.GetRelation(n->relation());
      if (!rel.ok()) {
        // Unknown relation: nothing to materialize; the executor
        // reports the NotFound with full context.
        u.keep_all = true;
        return;
      }
      const Schema& schema = (*rel)->schema();
      std::vector<ColumnBound> acc(schema.size());
      for (const ExprPtr& pred : preds) {
        // Plans carry unbound predicates; bind a copy to resolve column
        // indexes. A predicate that fails to bind prunes nothing — the
        // executor surfaces the binding error on the scratch database.
        Result<ExprPtr> bound = pred->BindAgainst(schema);
        if (!bound.ok()) continue;
        IntersectInto(&acc, ExtractColumnBounds(**bound, schema.size()));
      }
      u.bound_sets.push_back(std::move(acc));
      return;
    }
    // Select over something else: analyze the subtree as usual.
  }
  for (const PlanPtr& c : p.children()) CollectScans(*c, skeleton, uses);
}

}  // namespace

Result<MappedWsdDb> MappedWsdDb::Open(const std::string& path,
                                      MappedDbOptions options, Env* env) {
  if (env == nullptr) env = Env::Default();
  MappedWsdDb m;
  MAYBMS_ASSIGN_OR_RETURN(m.file_, env->MapFile(path));
  m.max_resident_bytes_ = ResolveResidentCap(options.max_resident_bytes);

  std::string_view bytes = m.file_->bytes();
  constexpr size_t kHeaderLen = sizeof(kHeaderV3) - 1;
  if (bytes.substr(0, kHeaderLen) != kHeaderV3) {
    if (bytes.substr(0, 10) == "MAYBMS-WSD") {
      return Status::Unsupported(
          "only \"MAYBMS-WSD 3\" snapshots support mapped loading; "
          "load v1/v2 files eagerly and re-save");
    }
    return Status::ParseError("not a MAYBMS-WSD snapshot: " + path);
  }

  MAYBMS_ASSIGN_OR_RETURN(std::vector<sv3::SectionView> sections,
                          sv3::WalkSnapshotSections(bytes.substr(kHeaderLen)));
  constexpr uint32_t kExpected[] = {sv3::kSecMeta,       sv3::kSecStrings,
                                    sv3::kSecShardDir,   sv3::kSecComponents,
                                    sv3::kSecRelations,  sv3::kSecEnd};
  if (sections.size() != 6) {
    return Status::ParseError("v3 snapshot must contain exactly 6 sections");
  }
  for (size_t i = 0; i < 6; ++i) {
    if (sections[i].tag != kExpected[i]) {
      return Status::ParseError(
          StrFormat("expected snapshot section %s, got %s",
                    SnapshotTagName(kExpected[i]).c_str(),
                    SnapshotTagName(sections[i].tag).c_str()));
    }
  }
  // The eager head (META, STRS, SDIR, END) is checksum-verified now;
  // COMP/RELS blocks verify individually on first materialization.
  for (size_t i : {size_t{0}, size_t{1}, size_t{2}, size_t{5}}) {
    const sv3::SectionView& s = sections[i];
    if (HashBytes(s.payload.data(), s.payload.size()) != s.checksum) {
      return Status::ParseError(
          StrFormat("snapshot section %s failed checksum verification",
                    SnapshotTagName(s.tag).c_str()));
    }
  }
  if (!sections[5].payload.empty()) {
    return Status::ParseError("snapshot END section carries payload");
  }

  MAYBMS_ASSIGN_OR_RETURN(m.meta_, sv3::ParseMetaV3(sections[0].payload));
  MAYBMS_ASSIGN_OR_RETURN(m.local_to_global_,
                          SnapshotStringTable::Restore(sections[1].payload));
  MAYBMS_ASSIGN_OR_RETURN(m.dir_, sv3::ParseDirectory(sections[2].payload));
  if (m.meta_.component_counter > 0) {
    // Validate the allocation counter against the directory once, so
    // Materialize can pad slot vectors without re-checking per call.
    const uint64_t min_counter =
        m.dir_.components.empty() ? 0 : m.dir_.components.back().id + 1;
    if (m.meta_.component_counter < min_counter ||
        m.meta_.component_counter > min_counter + sv3::kMaxComponentIdGaps) {
      return Status::ParseError(
          StrFormat("snapshot component counter %llu out of range",
                    static_cast<unsigned long long>(m.meta_.component_counter)));
    }
  }
  m.comp_payload_ = sections[3].payload;
  m.rels_payload_ = sections[4].payload;

  // Directory offsets are validated against the mapped payload sizes
  // here, so materialization never slices out of bounds.
  for (size_t k = 0; k < m.dir_.components.size(); ++k) {
    const sv3::DirComponent& dc = m.dir_.components[k];
    MAYBMS_RETURN_IF_ERROR(
        CheckBlockBounds(m.comp_payload_, dc.offset, dc.length, "component"));
    m.comp_index_of_id_.emplace(dc.id, k);
  }
  for (const sv3::DirRelation& dr : m.dir_.relations) {
    for (const sv3::DirShard& ds : dr.shards) {
      MAYBMS_RETURN_IF_ERROR(
          CheckBlockBounds(m.rels_payload_, ds.offset, ds.length, "shard"));
      for (ComponentId id : ds.ref_components) {
        if (m.comp_index_of_id_.find(id) == m.comp_index_of_id_.end()) {
          return Status::ParseError(
              StrFormat("snapshot shard references unknown component %u", id));
        }
      }
    }
  }

  {
    ValuePool& pool = ValuePool::Global();
    m.local_strings_.reserve(m.local_to_global_.size());
    for (uint32_t gid : m.local_to_global_) {
      m.local_strings_.push_back(&pool.Get(gid));
    }
  }

  m.partitions_.reserve(m.dir_.relations.size());
  for (const sv3::DirRelation& dr : m.dir_.relations) {
    ShardPartition part;
    part.rows_per_shard =
        m.meta_.rows_per_shard == 0
            ? std::max<size_t>(static_cast<size_t>(dr.n_tuples), 1)
            : static_cast<size_t>(m.meta_.rows_per_shard);
    part.shards.reserve(dr.shards.size());
    for (const sv3::DirShard& ds : dr.shards) {
      ShardInfo info;
      info.row_begin = static_cast<size_t>(ds.row_begin);
      info.row_end = static_cast<size_t>(ds.row_end);
      info.ranges = ds.ranges;
      info.ref_components = ds.ref_components;
      part.shards.push_back(std::move(info));
    }
    m.partitions_.push_back(std::move(part));
  }

  m.skeleton_.mutable_options().max_component_rows =
      static_cast<size_t>(m.meta_.max_component_rows);
  m.skeleton_.mutable_options().rows_per_shard =
      static_cast<size_t>(m.meta_.rows_per_shard);
  for (const sv3::DirRelation& dr : m.dir_.relations) {
    MAYBMS_RETURN_IF_ERROR(m.skeleton_.CreateRelation(dr.name, dr.schema));
    m.skeleton_.GetMutableRelation(dr.name).value()->set_display_name(
        dr.display);
  }
  if (m.meta_.owner_counter > 0) {
    m.skeleton_.BumpOwner(static_cast<OwnerId>(m.meta_.owner_counter - 1));
  }
  return m;
}

// Requires mu_ held.
void MappedWsdDb::Account(size_t bytes) {
  resident_bytes_ += bytes;
  peak_resident_bytes_ = std::max(peak_resident_bytes_, resident_bytes_);
}

// Requires mu_ held. Dropping an entry only releases the cache's
// reference; a concurrent materialization holding the shared_ptr keeps
// using the block safely.
void MappedWsdDb::EvictToCap() {
  while (resident_bytes_ > max_resident_bytes_ &&
         (!comp_cache_.empty() || !shard_cache_.empty())) {
    // Linear LRU scan: entry counts are one per touched shard/component,
    // small next to the decode work that created them.
    uint64_t best_use = std::numeric_limits<uint64_t>::max();
    uint64_t best_key = 0;
    bool best_is_comp = false;
    for (const auto& [key, e] : comp_cache_) {
      if (e.last_use < best_use) {
        best_use = e.last_use;
        best_key = key;
        best_is_comp = true;
      }
    }
    for (const auto& [key, e] : shard_cache_) {
      if (e.last_use < best_use) {
        best_use = e.last_use;
        best_key = key;
        best_is_comp = false;
      }
    }
    if (best_is_comp) {
      resident_bytes_ -= comp_cache_[best_key].bytes;
      comp_cache_.erase(best_key);
    } else {
      resident_bytes_ -= shard_cache_[best_key].bytes;
      shard_cache_.erase(best_key);
    }
  }
}

Result<std::shared_ptr<const Component>> MappedWsdDb::DecodeComponent(
    size_t k, bool use_cache, MaterializeStats* stats) {
  if (use_cache) {
    std::lock_guard<std::mutex> lock(*mu_);
    auto it = comp_cache_.find(k);
    if (it != comp_cache_.end()) {
      it->second.last_use = ++use_clock_;
      return it->second.comp;
    }
  }
  // Decode outside the lock: the mapped payload is immutable, and the
  // checksum + parse work dominates. Two threads racing on a cold block
  // both decode; the second install below adopts the first one's copy.
  const sv3::DirComponent& dc = dir_.components[k];
  MAYBMS_ASSIGN_OR_RETURN(
      std::string_view block,
      sv3::SliceBlock(comp_payload_, dc.offset, dc.length, dc.checksum,
                      "component"));
  SnapshotCursor cur(block);
  MAYBMS_ASSIGN_OR_RETURN(auto decoded,
                          sv3::DecodeComponentRecord(&cur, local_to_global_));
  if (!cur.AtEnd()) {
    return Status::ParseError("trailing bytes in snapshot component block");
  }
  if (decoded.first != dc.id || decoded.second.NumSlots() != dc.n_slots ||
      decoded.second.NumRows() != dc.n_rows) {
    return Status::ParseError(
        "snapshot component block disagrees with its directory entry");
  }
  stats->components_loaded++;
  stats->bytes_decoded += static_cast<size_t>(dc.length);
  auto comp = std::make_shared<const Component>(std::move(decoded.second));
  if (!use_cache) return comp;
  std::lock_guard<std::mutex> lock(*mu_);
  CachedComponent& slot = comp_cache_[k];
  if (slot.comp == nullptr) {
    slot.comp = std::move(comp);
    slot.bytes = static_cast<size_t>(dc.length);
    Account(slot.bytes);
  }
  slot.last_use = ++use_clock_;
  return slot.comp;
}

Result<std::shared_ptr<const std::vector<WsdTuple>>> MappedWsdDb::DecodeShard(
    size_t r, size_t s, bool use_cache, MaterializeStats* stats) {
  const uint64_t key = (static_cast<uint64_t>(r) << 32) | s;
  if (use_cache) {
    std::lock_guard<std::mutex> lock(*mu_);
    auto it = shard_cache_.find(key);
    if (it != shard_cache_.end()) {
      it->second.last_use = ++use_clock_;
      return it->second.tuples;
    }
  }
  const sv3::DirRelation& dr = dir_.relations[r];
  const sv3::DirShard& ds = dr.shards[s];
  MAYBMS_ASSIGN_OR_RETURN(
      std::string_view block,
      sv3::SliceBlock(rels_payload_, ds.offset, ds.length, ds.checksum,
                      "shard"));
  const size_t n = static_cast<size_t>(ds.row_end - ds.row_begin);
  std::vector<WsdTuple> tuples(n);
  MAYBMS_RETURN_IF_ERROR(sv3::DecodeShardRecord(
      block, static_cast<uint32_t>(dr.schema.size()), 0, n, local_strings_,
      &tuples));
  stats->bytes_decoded += static_cast<size_t>(ds.length);
  auto decoded =
      std::make_shared<const std::vector<WsdTuple>>(std::move(tuples));
  if (!use_cache) return decoded;
  std::lock_guard<std::mutex> lock(*mu_);
  CachedShard& slot = shard_cache_[key];
  if (slot.tuples == nullptr) {
    slot.tuples = std::move(decoded);
    slot.bytes = static_cast<size_t>(ds.length);
    Account(slot.bytes);
  }
  slot.last_use = ++use_clock_;
  return slot.tuples;
}

Result<WsdDb> MappedWsdDb::Materialize(
    const std::vector<std::vector<char>>& keep, bool use_cache) {
  MaterializeStats stats;
  std::vector<char> comp_needed(dir_.components.size(), 0);
  for (size_t r = 0; r < dir_.relations.size(); ++r) {
    stats.shards_total += dir_.relations[r].shards.size();
    for (size_t s = 0; s < dir_.relations[r].shards.size(); ++s) {
      if (!keep[r][s]) continue;
      stats.shards_kept++;
      for (ComponentId id : partitions_[r].shards[s].ref_components) {
        comp_needed[comp_index_of_id_.at(id)] = 1;
      }
    }
  }

  WsdDb db;
  db.mutable_options().max_component_rows =
      static_cast<size_t>(meta_.max_component_rows);
  db.mutable_options().rows_per_shard =
      static_cast<size_t>(meta_.rows_per_shard);
  // Components place at their original ids (kept tuples reference them);
  // skipped ids become dead slots, covered by the same gap budget the
  // directory was validated against.
  for (size_t k = 0; k < dir_.components.size(); ++k) {
    if (!comp_needed[k]) continue;
    MAYBMS_ASSIGN_OR_RETURN(std::shared_ptr<const Component> comp,
                            DecodeComponent(k, use_cache, &stats));
    MAYBMS_RETURN_IF_ERROR(sv3::PlaceComponentAt(&db, dir_.components[k].id,
                                                 k, Component(*comp)));
  }
  for (size_t r = 0; r < dir_.relations.size(); ++r) {
    const sv3::DirRelation& dr = dir_.relations[r];
    MAYBMS_RETURN_IF_ERROR(db.CreateRelation(dr.name, dr.schema));
    WsdRelation* rel = db.GetMutableRelation(dr.name).value();
    rel->set_display_name(dr.display);
    size_t rows = 0;
    for (size_t s = 0; s < dr.shards.size(); ++s) {
      if (keep[r][s]) {
        rows += static_cast<size_t>(dr.shards[s].row_end -
                                    dr.shards[s].row_begin);
      }
    }
    std::vector<WsdTuple>& tuples = rel->mutable_tuples();
    tuples.reserve(rows);
    for (size_t s = 0; s < dr.shards.size(); ++s) {
      if (!keep[r][s]) continue;
      MAYBMS_ASSIGN_OR_RETURN(std::shared_ptr<const std::vector<WsdTuple>> sh,
                              DecodeShard(r, s, use_cache, &stats));
      tuples.insert(tuples.end(), sh->begin(), sh->end());
    }
  }
  if (meta_.owner_counter > 0) {
    db.BumpOwner(static_cast<OwnerId>(meta_.owner_counter - 1));
  }
  // Restore the component-id allocation point (validated in Open), so a
  // full materialization replays the WAL exactly like the eager loader.
  db.PadComponentSlots(static_cast<size_t>(meta_.component_counter));
  MAYBMS_RETURN_IF_ERROR(db.CheckInvariants());
  {
    std::lock_guard<std::mutex> lock(*mu_);
    if (use_cache) EvictToCap();
    last_stats_ = stats;
  }
  return db;
}

Result<WsdDb> MappedWsdDb::MaterializeForPlan(const Plan& plan) {
  std::map<std::string, ScanUse> uses;
  CollectScans(plan, skeleton_, &uses);
  std::vector<std::vector<char>> keep(dir_.relations.size());
  for (size_t r = 0; r < dir_.relations.size(); ++r) {
    const size_t n_shards = dir_.relations[r].shards.size();
    auto it = uses.find(dir_.relations[r].name);
    if (it == uses.end()) {
      keep[r].assign(n_shards, 0);  // never scanned: stays empty
      continue;
    }
    const ScanUse& u = it->second;
    if (u.keep_all) {
      keep[r].assign(n_shards, 1);
      continue;
    }
    keep[r].assign(n_shards, 0);
    for (const std::vector<ColumnBound>& bounds : u.bound_sets) {
      std::vector<char> mask = PruneShards(partitions_[r], bounds);
      for (size_t s = 0; s < n_shards; ++s) keep[r][s] |= mask[s];
    }
  }
  return Materialize(keep, /*use_cache=*/true);
}

Result<WsdDb> MappedWsdDb::MaterializeAll() {
  std::vector<std::vector<char>> keep(dir_.relations.size());
  for (size_t r = 0; r < dir_.relations.size(); ++r) {
    keep[r].assign(dir_.relations[r].shards.size(), 1);
  }
  return Materialize(keep, /*use_cache=*/false);
}

}  // namespace maybms
