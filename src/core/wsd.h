// WsdDb: a probabilistic world-set decomposition of a finite set of
// possible databases (the paper's central data structure).
//
// Representation
//   - Each relation is stored as a *template relation*: its tuples exist
//     in some subset of the worlds, and each cell either holds an inline
//     (certain) value or references a slot of a component.
//   - The *component store* holds the independent factors. A world is one
//     row choice per component; its probability is the product of the
//     chosen rows' probabilities.
//   - A template tuple `t` exists in a world iff every slot owned by an
//     owner in `t.deps` is non-⊥ under that world's choices. Base tuples
//     own the slots of their uncertain fields; lifted operators attach
//     additional "existence slots" to encode survival of derived tuples.
#ifndef MAYBMS_CORE_WSD_H_
#define MAYBMS_CORE_WSD_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/result.h"
#include "core/component.h"
#include "core/types.h"
#include "storage/catalog.h"
#include "storage/relation.h"
#include "storage/schema.h"

namespace maybms {

struct ShardPartition;  // core/shard.h
class DeltaBatch;       // core/delta.h

/// What a DeltaBatch touched: the invalidation unit handed to callers so
/// caches can be maintained delta-scoped instead of wholesale. Clusters
/// are keyed by component *content* (see ClusterIndex::ClusterKey), so a
/// dirty component automatically re-keys every cluster it participates
/// in — the effects report which components those are.
struct DeltaEffects {
  /// Components whose content changed (edited in place or created).
  std::vector<ComponentId> dirty_components;
  /// Components garbage-collected because no surviving tuple references
  /// or is gated by them.
  std::vector<ComponentId> removed_components;
  /// Storage keys (lowercased names) of relations whose tuple vectors
  /// changed or that reference a dirty component.
  std::vector<std::string> dirty_relations;
  size_t tuples_inserted = 0;
  size_t tuples_evicted = 0;
  /// Aggregated statistics of the batch's REPAIR KEY ops.
  size_t repair_groups = 0;
  size_t repair_conflicting_groups = 0;
  double repair_log2_worlds_added = 0.0;
  /// Aggregated statistics of the batch's ENFORCE ops.
  double enforce_removed_mass = 0.0;
  size_t enforce_rows_removed = 0;
  /// The database's mutation epoch after this batch applied.
  uint64_t epoch = 0;
};

/// A template cell: inline certain value or reference to a component slot.
class Cell {
 public:
  Cell() : rep_(Value::Null()) {}
  static Cell Certain(Value v) {
    Cell c;
    c.rep_ = std::move(v);
    return c;
  }
  static Cell Ref(FieldRef ref) {
    Cell c;
    c.rep_ = ref;
    return c;
  }

  bool is_certain() const { return std::holds_alternative<Value>(rep_); }
  bool is_ref() const { return !is_certain(); }
  const Value& value() const { return std::get<Value>(rep_); }
  const FieldRef& ref() const { return std::get<FieldRef>(rep_); }
  FieldRef& mutable_ref() { return std::get<FieldRef>(rep_); }

 private:
  std::variant<Value, FieldRef> rep_;
};

/// One tuple of a template relation.
struct WsdTuple {
  std::vector<Cell> cells;
  /// Sorted, deduplicated owner ids gating this tuple's existence.
  std::vector<OwnerId> deps;

  /// Adds an owner to deps, keeping the vector sorted and unique.
  void AddDep(OwnerId owner);
};

/// A template relation: schema plus world-dependent tuples.
///
/// Copy-on-write: copying a WsdRelation shares the tuple vector (an
/// O(1) pointer copy); the mutable accessors detach — clone the shared
/// vector — when it is shared. Catalog snapshots published to concurrent
/// readers (server/shared_catalog.h) rely on this: a writer's detach
/// never disturbs the tuples a reader's snapshot still references.
class WsdRelation {
 public:
  WsdRelation() : tuples_(std::make_shared<std::vector<WsdTuple>>()) {}
  WsdRelation(std::string name, Schema schema)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        tuples_(std::make_shared<std::vector<WsdTuple>>()) {}

  // Copies share the tuple vector and read the shard cache atomically (a
  // concurrent reader may be CAS-installing a partition on the source at
  // the same moment). Moves require exclusive access, like mutation.
  WsdRelation(const WsdRelation& o)
      : name_(o.name_),
        display_name_(o.display_name_),
        schema_(o.schema_),
        tuples_(o.tuples_),
        shards_(std::atomic_load(&o.shards_)) {}
  WsdRelation& operator=(const WsdRelation& o) {
    if (this == &o) return *this;
    name_ = o.name_;
    display_name_ = o.display_name_;
    schema_ = o.schema_;
    tuples_ = o.tuples_;
    shards_ = std::atomic_load(&o.shards_);
    return *this;
  }
  WsdRelation(WsdRelation&&) = default;
  WsdRelation& operator=(WsdRelation&&) = default;

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  /// Name used for schema disambiguation in products/joins (e.g. the
  /// base-relation name of a scan copy whose storage name is a temp).
  const std::string& display_name() const {
    return display_name_.empty() ? name_ : display_name_;
  }
  void set_display_name(std::string n) { display_name_ = std::move(n); }
  const Schema& schema() const { return schema_; }
  void set_schema(Schema s) { schema_ = std::move(s); }

  size_t NumTuples() const { return tuples_->size(); }
  const WsdTuple& tuple(size_t i) const { return (*tuples_)[i]; }
  WsdTuple& mutable_tuple(size_t i) {
    Detach();
    return (*tuples_)[i];
  }
  const std::vector<WsdTuple>& tuples() const { return *tuples_; }
  /// Note: the returned reference is invalidated by copying this
  /// relation (or its database) — the next mutable access re-detaches.
  std::vector<WsdTuple>& mutable_tuples() {
    Detach();
    return *tuples_;
  }

  void Add(WsdTuple t) {
    Detach();
    tuples_->push_back(std::move(t));
  }
  void Reserve(size_t n) {
    Detach();
    tuples_->reserve(n);
  }

  /// Cached shard partition (see core/shard.h). Invalidated by the tuple
  /// mutators above and by component mutation through the owning
  /// database (WsdDb::mutable_component and friends), since the
  /// partition records per-shard possible-value ranges read from the
  /// components. Accessed atomically: concurrent readers optimizing
  /// plans against a shared catalog may populate it simultaneously —
  /// GetShardPartition installs with compare-and-swap so one partition
  /// wins.
  std::shared_ptr<const ShardPartition> cached_shards() const {
    return std::atomic_load(&shards_);
  }
  void set_cached_shards(std::shared_ptr<const ShardPartition> p) const {
    std::atomic_store(&shards_, std::move(p));
  }
  /// CAS-installs `desired` if the cache still holds `*expected`
  /// (updating *expected to the current value on failure). Returns true
  /// when installed.
  bool cas_cached_shards(std::shared_ptr<const ShardPartition>* expected,
                         std::shared_ptr<const ShardPartition> desired) const {
    return std::atomic_compare_exchange_strong(&shards_, expected,
                                               std::move(desired));
  }

 private:
  /// Clones the tuple vector when it is shared with another relation
  /// (i.e. with another catalog version), so mutation stays private.
  /// use_count() == 1 proves uniqueness: other threads can only bump the
  /// count through a WsdRelation that already shares the vector, which
  /// would make the count >= 2 to begin with.
  void Detach() {
    set_cached_shards(nullptr);
    if (!tuples_) {
      tuples_ = std::make_shared<std::vector<WsdTuple>>();
    } else if (tuples_.use_count() > 1) {
      tuples_ = std::make_shared<std::vector<WsdTuple>>(*tuples_);
    }
  }

  std::string name_;
  std::string display_name_;
  Schema schema_;
  /// Never null; shared across copies until a mutable accessor detaches.
  std::shared_ptr<std::vector<WsdTuple>> tuples_;
  mutable std::shared_ptr<const ShardPartition> shards_;
};

/// Tuning knobs for lifted evaluation.
struct WsdOptions {
  /// Hard cap on the row count of any merged component. Lifted operators
  /// return ResourceExhausted instead of exceeding it.
  size_t max_component_rows = 1u << 20;

  /// Target template rows per horizontal shard (core/shard.h); 0 keeps
  /// each relation in a single shard. Persisted by v3 snapshots so a
  /// mapped reader sees the same partition the writer used.
  size_t rows_per_shard = 4096;
};

/// A world-set database: template relations + component store.
///
/// Value type with copy-on-write semantics: copying a WsdDb copies the
/// relation map (whose relations share their tuple vectors) and a vector
/// of shared_ptrs to components — O(#relations + #components), not
/// O(data). The first mutation of a shared relation or component clones
/// just that object, so copies stay logically independent. This is what
/// makes snapshot-isolated catalog versions cheap to publish
/// (server/shared_catalog.h) and lifted evaluation's private input
/// copies nearly free.
///
/// Thread safety: all const methods are safe to call concurrently as
/// long as no thread mutates this database object — value
/// materialization only reads the (internally synchronized) global
/// ValuePool, and the lazy caches (Component/Relation::GetStats, the
/// shard-partition cache) publish atomically. The parallel aggregate
/// paths (core/confidence.cc) and concurrent server sessions rely on
/// this. Distinct WsdDb copies sharing inner objects may be used from
/// different threads freely: mutators detach before writing.
class WsdDb {
 public:
  WsdDb() = default;

  // Copies and moves never inherit an active delta scope: the scope is a
  // frame-local recording hook owned by an in-flight ApplyDelta.
  WsdDb(const WsdDb& o)
      : relations_(o.relations_),
        components_(o.components_),
        next_owner_(o.next_owner_),
        options_(o.options_),
        mutation_epoch_(o.mutation_epoch_) {}
  WsdDb& operator=(const WsdDb& o) {
    if (this == &o) return *this;
    relations_ = o.relations_;
    components_ = o.components_;
    next_owner_ = o.next_owner_;
    options_ = o.options_;
    mutation_epoch_ = o.mutation_epoch_;
    delta_scope_ = nullptr;
    return *this;
  }
  WsdDb(WsdDb&& o) noexcept
      : relations_(std::move(o.relations_)),
        components_(std::move(o.components_)),
        next_owner_(o.next_owner_),
        options_(o.options_),
        mutation_epoch_(o.mutation_epoch_) {}
  WsdDb& operator=(WsdDb&& o) noexcept {
    if (this == &o) return *this;
    relations_ = std::move(o.relations_);
    components_ = std::move(o.components_);
    next_owner_ = o.next_owner_;
    options_ = o.options_;
    mutation_epoch_ = o.mutation_epoch_;
    delta_scope_ = nullptr;
    return *this;
  }

  // --- relations ---------------------------------------------------------
  Status CreateRelation(std::string name, Schema schema);
  bool HasRelation(const std::string& name) const;
  Result<const WsdRelation*> GetRelation(const std::string& name) const;
  Result<WsdRelation*> GetMutableRelation(const std::string& name);
  Status DropRelation(const std::string& name);
  std::vector<std::string> RelationNames() const;
  const std::map<std::string, WsdRelation>& relations() const {
    return relations_;
  }
  std::map<std::string, WsdRelation>& mutable_relations() {
    return relations_;
  }

  // --- components --------------------------------------------------------
  /// Adds a component, returning its id.
  ComponentId AddComponent(Component c);
  /// Component access; the id must be live.
  const Component& component(ComponentId id) const;
  /// Mutable component access: detaches the component if it is shared
  /// with another database copy, and invalidates every relation's shard
  /// cache (the cached partitions carry per-shard possible-value ranges
  /// read from the components).
  Component& mutable_component(ComponentId id);
  bool IsLive(ComponentId id) const {
    return id < components_.size() && components_[id] != nullptr;
  }
  void RemoveComponent(ComponentId id);
  /// Ids of all live components.
  std::vector<ComponentId> LiveComponents() const;
  size_t NumLiveComponents() const;
  /// Number of component slots ever allocated (live + dead). AddComponent
  /// hands out id component_slot_count(), so two databases only allocate
  /// the same ids going forward when their slot counts match — the binary
  /// snapshot persists this so WAL replay after a reload is
  /// deterministic.
  size_t component_slot_count() const { return components_.size(); }
  /// Grows the slot vector to `n` with trailing dead slots (no-op when
  /// already that large). Used by snapshot loading to restore the
  /// allocation point recorded at save time.
  void PadComponentSlots(size_t n) {
    if (n > components_.size()) components_.resize(n);
  }

  /// Merges the given components (≥1) into a single product component.
  /// All template cells referencing the old components are remapped to the
  /// merged one. Returns the merged component's id.
  Result<ComponentId> MergeComponents(std::vector<ComponentId> ids,
                                      size_t max_rows);

  /// Merges several disjoint groups at once; template cells are remapped
  /// in a single pass over all relations (use this instead of repeated
  /// MergeComponents calls when many groups are involved). Returns the
  /// merged id per group, aligned with `groups`.
  Result<std::vector<ComponentId>> MergeComponentGroups(
      const std::vector<std::vector<ComponentId>>& groups, size_t max_rows);

  /// Fresh owner id for new tuples/existence slots.
  OwnerId NextOwner() { return next_owner_++; }
  /// Keeps the owner counter ahead of any id used so far.
  void BumpOwner(OwnerId used) {
    if (used >= next_owner_) next_owner_ = used + 1;
  }
  /// The next owner id NextOwner() would hand out (persisted by the
  /// binary snapshot so a reloaded database allocates from where the
  /// saved one stopped).
  OwnerId owner_counter() const { return next_owner_; }

  const WsdOptions& options() const { return options_; }
  WsdOptions& mutable_options() { return options_; }

  // --- statistics --------------------------------------------------------
  /// log2 of the number of choice combinations (= worlds counted as in the
  /// paper's "2^624449 worlds": the product of component row counts).
  double Log2WorldCount() const;

  /// Exact world count when it fits in uint64; nullopt otherwise.
  std::optional<uint64_t> WorldCountIfSmall(uint64_t limit = 1ull << 62) const;

  /// Flat serialized size of template relations + components, comparable
  /// with Relation::SerializedSize for the storage experiment. Inline
  /// cells count their value; ref cells count a 8-byte reference.
  uint64_t SerializedSize() const;

  /// Bytes the decomposition actually occupies in memory with the
  /// columnar, interned representation: packed component columns +
  /// probabilities + template cells + the pool bytes of the distinct
  /// strings this database references. The storage experiment reports
  /// this next to the logical flat model of SerializedSize().
  uint64_t InternedSize() const;

  /// Probability that `t` exists (product over components of the mass of
  /// rows where no dep-owned slot is ⊥).
  double ExistenceProbability(const WsdTuple& t) const;

  /// Mass of `c`'s rows where no slot owned by one of `deps` (sorted) is
  /// ⊥. Sets *gates to false (returning 1.0) when no slot of `c` is
  /// owned by a dep. Shared between ExistenceProbability and the
  /// memoized per-tuple existence path (core/confidence.cc) so both
  /// produce bit-identical products.
  static double GatedAliveMass(const Component& c,
                               const std::vector<OwnerId>& deps, bool* gates);

  // --- deltas ------------------------------------------------------------
  /// Applies a batch of mutations (the single mutation funnel: SQL
  /// INSERT/REPAIR/ENFORCE/DELETE, the server commit path and streaming
  /// ingest all come through here; see core/delta.h). Ops apply in order
  /// and stop at the first error — already-applied ops stay applied, so
  /// WAL replay of the same batch reproduces the same partial state.
  /// Defined in core/delta.cc.
  Result<DeltaEffects> ApplyDelta(const DeltaBatch& batch);

  /// Monotone counter bumped by every ApplyDelta (used by tests and by
  /// callers that want a cheap "did anything change" signal).
  uint64_t mutation_epoch() const { return mutation_epoch_; }

  // --- invariants / rendering -------------------------------------------
  /// Validates structural invariants: refs point at live components/slots,
  /// component masses ≈ 1, deps sorted, no ⊥ in inline cells. Returns the
  /// first violation found.
  Status CheckInvariants() const;

  /// Paper-style rendering: template relations, then components as small
  /// tables joined by ×.
  std::string ToString() const;

 private:
  /// Recording hook installed by an in-flight ApplyDelta: while active,
  /// the component mutators append touched ids here instead of clearing
  /// every relation's shard cache wholesale; the delta epilogue then
  /// invalidates only the relations that reference a touched component.
  struct DeltaScope {
    std::vector<ComponentId> dirty;
    std::vector<ComponentId> removed;
    /// Slot owners of every touched component (captured before removal,
    /// while the slots are still readable): the epilogue marks relations
    /// whose tuples are *gated* by a touched component dirty, not just
    /// relations whose cells reference one.
    std::vector<OwnerId> touched_owners;
  };

  /// Clears every relation's cached shard partition. Called by the
  /// component mutators: partitions persist per-shard possible-value
  /// ranges, so a component edit (e.g. ENFORCE removing rows) must not
  /// leave a reader pruning shards against stale ranges.
  void InvalidateShardCaches();

  std::map<std::string, WsdRelation> relations_;
  /// null = dead slot. Shared across database copies until
  /// mutable_component detaches (copy-on-write).
  std::vector<std::shared_ptr<Component>> components_;
  OwnerId next_owner_ = 1;
  WsdOptions options_;
  uint64_t mutation_epoch_ = 0;
  /// Non-null only inside ApplyDelta; never propagated by copy/move.
  DeltaScope* delta_scope_ = nullptr;
};

}  // namespace maybms

#endif  // MAYBMS_CORE_WSD_H_
