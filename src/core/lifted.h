// Lifted relational algebra over world-set decompositions.
//
// Each operator consumes its input relation(s) inside the WsdDb (they are
// removed or renamed) and produces the `output` relation in the same
// database, preserving the semantics: evaluating the operator in every
// world of the input WSD yields exactly the worlds of the output WSD,
// probabilities included. The differential tests in tests/ verify this
// against explicit world enumeration.
//
// Selection follows the paper's algorithm: tuples whose predicate can be
// decided per-world get their fields marked with ⊥ in the failing worlds
// (in place when the tuple exclusively owns its slots, via a synthetic
// existence slot otherwise), and normalization restores the compact form.
#ifndef MAYBMS_CORE_LIFTED_H_
#define MAYBMS_CORE_LIFTED_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/wsd.h"
#include "ra/expr_compile.h"
#include "ra/plan.h"

namespace maybms {

/// σ: keeps input tuples only in the worlds where `pred` holds. The
/// per-world predicate loops run on the compiled vectorized evaluator
/// over packed component columns (see ra/expr_compile.h), governed by
/// `opts`; rows/predicates the compiler cannot decide fall back to the
/// interpreter, so both modes agree by construction.
Status LiftedSelect(WsdDb* db, const std::string& input, const ExprPtr& pred,
                    const std::string& output, const ExecOptions& opts = {});

/// π (bag semantics): projects onto the given expressions. Column
/// references are free; computed expressions over uncertain fields add
/// slots to (merged) components, evaluated batched over packed columns
/// under `opts` with the same interpreter-fallback contract as σ.
Status LiftedProject(WsdDb* db, const std::string& input,
                     const std::vector<ProjectItem>& items,
                     const std::string& output, const ExecOptions& opts = {});

/// ×: pairs tuples within each world; pair existence = both exist.
Status LiftedProduct(WsdDb* db, const std::string& left,
                     const std::string& right, const std::string& output);

/// ⋈: product restricted by `pred`, with a hash fast path for equi-join
/// conjuncts whose key cells are certain. The predicate application runs
/// on the compiled evaluator under `opts`, like σ.
Status LiftedJoin(WsdDb* db, const std::string& left, const std::string& right,
                  const ExprPtr& pred, const std::string& output,
                  const ExecOptions& opts = {});

/// ∪ (bag): concatenation; schemas must have equal arity and types.
Status LiftedUnion(WsdDb* db, const std::string& left,
                   const std::string& right, const std::string& output);

/// − (anti-join semantics, as in SQL EXCEPT evaluated per world): a left
/// tuple survives in a world iff no right tuple with equal values exists
/// in that world. Left multiplicity is preserved; NULLs compare equal.
Status LiftedDifference(WsdDb* db, const std::string& left,
                        const std::string& right, const std::string& output);

/// δ: per-world duplicate elimination. Among tuples with equal values in
/// a world, only the first survives.
Status LiftedDistinct(WsdDb* db, const std::string& input,
                      const std::string& output);

/// Renames/moves a relation inside the database.
Status RenameRelation(WsdDb* db, const std::string& from,
                      const std::string& to);

}  // namespace maybms

#endif  // MAYBMS_CORE_LIFTED_H_
