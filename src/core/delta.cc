#include "core/delta.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "chase/enforce.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/repair.h"
#include "core/wsd.h"
#include "storage/snapshot_io.h"

#if defined(__GNUC__) && !defined(__clang__)
// GCC's -Wmaybe-uninitialized misfires on std::variant relocation during
// vector growth (it warns about members of inactive alternatives); every
// op is fully initialized before it is pushed.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace maybms {

// --- batch construction -----------------------------------------------------

DeltaBatch& DeltaBatch::Insert(std::string relation,
                               std::vector<CellSpec> cells) {
  ops_.push_back(InsertOp{std::move(relation), std::move(cells)});
  return *this;
}

DeltaBatch& DeltaBatch::EvictOldest(std::string relation, size_t count) {
  ops_.push_back(EvictOp{std::move(relation), count});
  return *this;
}

DeltaBatch& DeltaBatch::Reweight(ComponentId cid, std::vector<double> probs) {
  ops_.push_back(ReweightOp{cid, std::move(probs)});
  return *this;
}

DeltaBatch& DeltaBatch::SetCell(ComponentId cid, uint32_t row, uint32_t slot,
                                Value v) {
  SetCellOp op;
  op.cid = cid;
  op.row = row;
  op.slot = slot;
  op.value = std::move(v);
  ops_.push_back(std::move(op));
  return *this;
}

DeltaBatch& DeltaBatch::RepairKey(std::string relation,
                                  std::vector<std::string> key_attrs,
                                  std::string weight_attr) {
  ops_.push_back(RepairOp{std::move(relation), std::move(key_attrs),
                          std::move(weight_attr)});
  return *this;
}

DeltaBatch& DeltaBatch::Enforce(Constraint constraint) {
  ops_.push_back(EnforceOp{std::move(constraint)});
  return *this;
}

// --- serialization ----------------------------------------------------------

namespace {

constexpr uint32_t kDeltaVersion = 1;

enum class OpTag : uint8_t {
  kInsert = 1,
  kEvict = 2,
  kReweight = 3,
  kSetCell = 4,
  kRepair = 5,
  kEnforce = 6,
};

enum class ValueTag : uint8_t {
  kNull = 0,
  kBottom = 1,
  kBool = 2,
  kInt = 3,
  kDouble = 4,
  kString = 5,
};

void PutValue(std::string* out, const Value& v) {
  if (v.is_null()) {
    PutPod(out, static_cast<uint8_t>(ValueTag::kNull));
  } else if (v.is_bottom()) {
    PutPod(out, static_cast<uint8_t>(ValueTag::kBottom));
  } else if (v.is_bool()) {
    PutPod(out, static_cast<uint8_t>(ValueTag::kBool));
    PutPod(out, static_cast<uint8_t>(v.as_bool() ? 1 : 0));
  } else if (v.is_int()) {
    PutPod(out, static_cast<uint8_t>(ValueTag::kInt));
    PutPod(out, v.as_int());
  } else if (v.is_double()) {
    PutPod(out, static_cast<uint8_t>(ValueTag::kDouble));
    PutPod(out, v.as_double());
  } else {
    PutPod(out, static_cast<uint8_t>(ValueTag::kString));
    PutLenString(out, v.as_string());
  }
}

Result<Value> ReadValue(SnapshotCursor* cur) {
  MAYBMS_ASSIGN_OR_RETURN(uint8_t tag, cur->Read<uint8_t>());
  switch (static_cast<ValueTag>(tag)) {
    case ValueTag::kNull:
      return Value::Null();
    case ValueTag::kBottom:
      return Value::Bottom();
    case ValueTag::kBool: {
      MAYBMS_ASSIGN_OR_RETURN(uint8_t b, cur->Read<uint8_t>());
      return Value::Bool(b != 0);
    }
    case ValueTag::kInt: {
      MAYBMS_ASSIGN_OR_RETURN(int64_t i, cur->Read<int64_t>());
      return Value::Int(i);
    }
    case ValueTag::kDouble: {
      MAYBMS_ASSIGN_OR_RETURN(double d, cur->Read<double>());
      return Value::Double(d);
    }
    case ValueTag::kString: {
      MAYBMS_ASSIGN_OR_RETURN(std::string s, cur->ReadLenString());
      return Value::String(std::move(s));
    }
  }
  return Status::ParseError(StrFormat("unknown delta value tag %u", tag));
}

void PutStringList(std::string* out, const std::vector<std::string>& v) {
  PutPod(out, static_cast<uint32_t>(v.size()));
  for (const std::string& s : v) PutLenString(out, s);
}

Result<std::vector<std::string>> ReadStringList(SnapshotCursor* cur) {
  MAYBMS_ASSIGN_OR_RETURN(uint32_t n, cur->Read<uint32_t>());
  std::vector<std::string> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    MAYBMS_ASSIGN_OR_RETURN(std::string s, cur->ReadLenString());
    out.push_back(std::move(s));
  }
  return out;
}

Status PutCellSpec(std::string* out, const CellSpec& spec) {
  if (spec.is_pending()) {
    return Status::InvalidArgument(
        "pending cells cannot appear in a serialized delta");
  }
  PutPod(out, static_cast<uint8_t>(spec.is_certain() ? 0 : 1));
  if (spec.is_certain()) {
    PutValue(out, spec.value());
    return Status::OK();
  }
  const auto& alts = spec.alternatives();
  PutPod(out, static_cast<uint32_t>(alts.size()));
  for (const Alternative& a : alts) {
    PutValue(out, a.value);
    PutPod(out, a.prob);
  }
  return Status::OK();
}

Result<CellSpec> ReadCellSpec(SnapshotCursor* cur) {
  MAYBMS_ASSIGN_OR_RETURN(uint8_t kind, cur->Read<uint8_t>());
  if (kind == 0) {
    MAYBMS_ASSIGN_OR_RETURN(Value v, ReadValue(cur));
    return CellSpec::Certain(std::move(v));
  }
  if (kind != 1) {
    return Status::ParseError(StrFormat("unknown delta cell kind %u", kind));
  }
  MAYBMS_ASSIGN_OR_RETURN(uint32_t n, cur->Read<uint32_t>());
  std::vector<Alternative> alts;
  alts.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    MAYBMS_ASSIGN_OR_RETURN(Value v, ReadValue(cur));
    MAYBMS_ASSIGN_OR_RETURN(double p, cur->Read<double>());
    alts.push_back({std::move(v), p});
  }
  return CellSpec::OrSet(std::move(alts));
}

Status PutConstraint(std::string* out, const Constraint& c) {
  if (c.kind() == ConstraintKind::kDomain) {
    // Domain predicates are expression trees; the SQL layer logs the
    // statement text for those instead of a binary delta record.
    return Status::InvalidArgument(
        "domain constraints are not serializable in a delta");
  }
  PutPod(out, static_cast<uint8_t>(c.kind()));
  PutLenString(out, c.relation());
  PutLenString(out, c.name());
  PutStringList(out, c.lhs());
  PutStringList(out, c.rhs());
  return Status::OK();
}

Result<Constraint> ReadConstraint(SnapshotCursor* cur) {
  MAYBMS_ASSIGN_OR_RETURN(uint8_t kind, cur->Read<uint8_t>());
  MAYBMS_ASSIGN_OR_RETURN(std::string relation, cur->ReadLenString());
  MAYBMS_ASSIGN_OR_RETURN(std::string name, cur->ReadLenString());
  MAYBMS_ASSIGN_OR_RETURN(std::vector<std::string> lhs, ReadStringList(cur));
  MAYBMS_ASSIGN_OR_RETURN(std::vector<std::string> rhs, ReadStringList(cur));
  switch (static_cast<ConstraintKind>(kind)) {
    case ConstraintKind::kFd:
      return Constraint::FunctionalDependency(std::move(relation),
                                              std::move(lhs), std::move(rhs),
                                              std::move(name));
    case ConstraintKind::kKey:
      return Constraint::Key(std::move(relation), std::move(lhs),
                             std::move(name));
    case ConstraintKind::kDomain:
      break;
  }
  return Status::ParseError(
      StrFormat("unknown delta constraint kind %u", kind));
}

}  // namespace

Result<std::string> DeltaBatch::Serialize() const {
  std::string out;
  PutPod(&out, kDeltaVersion);
  PutPod(&out, static_cast<uint32_t>(ops_.size()));
  for (const Op& op : ops_) {
    Status st = std::visit(
        [&out](const auto& o) -> Status {
          using T = std::decay_t<decltype(o)>;
          if constexpr (std::is_same_v<T, InsertOp>) {
            PutPod(&out, static_cast<uint8_t>(OpTag::kInsert));
            PutLenString(&out, o.relation);
            PutPod(&out, static_cast<uint32_t>(o.cells.size()));
            for (const CellSpec& c : o.cells) {
              MAYBMS_RETURN_IF_ERROR(PutCellSpec(&out, c));
            }
          } else if constexpr (std::is_same_v<T, EvictOp>) {
            PutPod(&out, static_cast<uint8_t>(OpTag::kEvict));
            PutLenString(&out, o.relation);
            PutPod(&out, static_cast<uint64_t>(o.count));
          } else if constexpr (std::is_same_v<T, ReweightOp>) {
            PutPod(&out, static_cast<uint8_t>(OpTag::kReweight));
            PutPod(&out, static_cast<uint64_t>(o.cid));
            PutPod(&out, static_cast<uint64_t>(o.probs.size()));
            PutArray(&out, o.probs);
          } else if constexpr (std::is_same_v<T, SetCellOp>) {
            PutPod(&out, static_cast<uint8_t>(OpTag::kSetCell));
            PutPod(&out, static_cast<uint64_t>(o.cid));
            PutPod(&out, o.row);
            PutPod(&out, o.slot);
            PutValue(&out, o.value);
          } else if constexpr (std::is_same_v<T, RepairOp>) {
            PutPod(&out, static_cast<uint8_t>(OpTag::kRepair));
            PutLenString(&out, o.relation);
            PutStringList(&out, o.key_attrs);
            PutLenString(&out, o.weight_attr);
          } else {
            static_assert(std::is_same_v<T, EnforceOp>);
            PutPod(&out, static_cast<uint8_t>(OpTag::kEnforce));
            MAYBMS_RETURN_IF_ERROR(PutConstraint(&out, o.constraint));
          }
          return Status::OK();
        },
        op);
    MAYBMS_RETURN_IF_ERROR(st);
  }
  return out;
}

Result<DeltaBatch> DeltaBatch::Deserialize(std::string_view payload) {
  SnapshotCursor cur(payload);
  MAYBMS_ASSIGN_OR_RETURN(uint32_t version, cur.Read<uint32_t>());
  if (version != kDeltaVersion) {
    return Status::ParseError(
        StrFormat("unsupported delta version %u", version));
  }
  MAYBMS_ASSIGN_OR_RETURN(uint32_t n_ops, cur.Read<uint32_t>());
  DeltaBatch batch;
  for (uint32_t i = 0; i < n_ops; ++i) {
    MAYBMS_ASSIGN_OR_RETURN(uint8_t tag, cur.Read<uint8_t>());
    switch (static_cast<OpTag>(tag)) {
      case OpTag::kInsert: {
        MAYBMS_ASSIGN_OR_RETURN(std::string relation, cur.ReadLenString());
        MAYBMS_ASSIGN_OR_RETURN(uint32_t n_cells, cur.Read<uint32_t>());
        std::vector<CellSpec> cells;
        cells.reserve(n_cells);
        for (uint32_t c = 0; c < n_cells; ++c) {
          MAYBMS_ASSIGN_OR_RETURN(CellSpec spec, ReadCellSpec(&cur));
          cells.push_back(std::move(spec));
        }
        batch.Insert(std::move(relation), std::move(cells));
        break;
      }
      case OpTag::kEvict: {
        MAYBMS_ASSIGN_OR_RETURN(std::string relation, cur.ReadLenString());
        MAYBMS_ASSIGN_OR_RETURN(uint64_t count, cur.Read<uint64_t>());
        batch.EvictOldest(std::move(relation), static_cast<size_t>(count));
        break;
      }
      case OpTag::kReweight: {
        MAYBMS_ASSIGN_OR_RETURN(uint64_t cid, cur.Read<uint64_t>());
        MAYBMS_ASSIGN_OR_RETURN(uint64_t n_rows, cur.Read<uint64_t>());
        std::vector<double> probs;
        MAYBMS_RETURN_IF_ERROR(
            cur.ReadArray(static_cast<size_t>(n_rows), &probs));
        batch.Reweight(static_cast<ComponentId>(cid), std::move(probs));
        break;
      }
      case OpTag::kSetCell: {
        MAYBMS_ASSIGN_OR_RETURN(uint64_t cid, cur.Read<uint64_t>());
        MAYBMS_ASSIGN_OR_RETURN(uint32_t row, cur.Read<uint32_t>());
        MAYBMS_ASSIGN_OR_RETURN(uint32_t slot, cur.Read<uint32_t>());
        MAYBMS_ASSIGN_OR_RETURN(Value v, ReadValue(&cur));
        batch.SetCell(static_cast<ComponentId>(cid), row, slot, std::move(v));
        break;
      }
      case OpTag::kRepair: {
        MAYBMS_ASSIGN_OR_RETURN(std::string relation, cur.ReadLenString());
        MAYBMS_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                                ReadStringList(&cur));
        MAYBMS_ASSIGN_OR_RETURN(std::string weight, cur.ReadLenString());
        batch.RepairKey(std::move(relation), std::move(keys),
                        std::move(weight));
        break;
      }
      case OpTag::kEnforce: {
        MAYBMS_ASSIGN_OR_RETURN(Constraint c, ReadConstraint(&cur));
        batch.Enforce(std::move(c));
        break;
      }
      default:
        return Status::ParseError(StrFormat("unknown delta op tag %u", tag));
    }
  }
  if (!cur.AtEnd()) {
    return Status::ParseError("trailing bytes after delta ops");
  }
  return batch;
}

std::string DeltaBatch::ToString() const {
  std::string out;
  for (const Op& op : ops_) {
    std::visit(
        [&out](const auto& o) {
          using T = std::decay_t<decltype(o)>;
          if constexpr (std::is_same_v<T, InsertOp>) {
            out += StrFormat("insert %s (%zu cells)\n", o.relation.c_str(),
                             o.cells.size());
          } else if constexpr (std::is_same_v<T, EvictOp>) {
            out += StrFormat("evict %s oldest %zu\n", o.relation.c_str(),
                             o.count);
          } else if constexpr (std::is_same_v<T, ReweightOp>) {
            out += StrFormat("reweight c%u (%zu rows)\n", o.cid,
                             o.probs.size());
          } else if constexpr (std::is_same_v<T, SetCellOp>) {
            out += StrFormat("setcell c%u[%u,%u] = %s\n", o.cid, o.row,
                             o.slot, o.value.ToString().c_str());
          } else if constexpr (std::is_same_v<T, RepairOp>) {
            out += StrFormat("repair key %s (%zu attrs)\n", o.relation.c_str(),
                             o.key_attrs.size());
          } else {
            static_assert(std::is_same_v<T, EnforceOp>);
            out += "enforce " + o.constraint.ToString() + "\n";
          }
        },
        op);
  }
  return out;
}

// --- application ------------------------------------------------------------

namespace {

Status ApplyInsert(WsdDb* db, const DeltaBatch::InsertOp& op) {
  for (const CellSpec& c : op.cells) {
    if (c.is_pending()) {
      return Status::InvalidArgument(
          "pending cells are not allowed in a delta insert");
    }
  }
  return InsertTuple(db, op.relation, op.cells).status();
}

Status ApplyEvict(WsdDb* db, const DeltaBatch::EvictOp& op,
                  size_t* tuples_evicted) {
  MAYBMS_ASSIGN_OR_RETURN(WsdRelation * rel,
                          db->GetMutableRelation(op.relation));
  const size_t n = std::min(op.count, rel->NumTuples());
  if (n == 0) return Status::OK();

  // Candidate components for GC: those the evicted prefix references by
  // cell, plus those with a slot owned by an evicted dep (pure existence
  // components have no cell references).
  std::unordered_set<ComponentId> candidates;
  std::unordered_set<OwnerId> evicted_owners;
  {
    std::vector<WsdTuple>& tuples = rel->mutable_tuples();
    for (size_t i = 0; i < n; ++i) {
      for (const Cell& c : tuples[i].cells) {
        if (c.is_ref()) candidates.insert(c.ref().cid);
      }
      for (OwnerId o : tuples[i].deps) evicted_owners.insert(o);
    }
    tuples.erase(tuples.begin(), tuples.begin() + static_cast<ptrdiff_t>(n));
  }
  for (ComponentId id : db->LiveComponents()) {
    if (candidates.count(id)) continue;
    for (const Slot& s : db->component(id).slots()) {
      if (evicted_owners.count(s.owner)) {
        candidates.insert(id);
        break;
      }
    }
  }

  // A candidate survives when some remaining tuple (of any relation)
  // still references it or is gated by one of its owners.
  std::unordered_set<ComponentId> referenced;
  std::unordered_set<OwnerId> live_owners;
  for (const auto& [key, r] : db->relations()) {
    for (const WsdTuple& t : r.tuples()) {
      for (const Cell& c : t.cells) {
        if (c.is_ref()) referenced.insert(c.ref().cid);
      }
      for (OwnerId o : t.deps) live_owners.insert(o);
    }
  }
  for (ComponentId id : candidates) {
    if (!db->IsLive(id) || referenced.count(id)) continue;
    bool gates_survivor = false;
    for (const Slot& s : db->component(id).slots()) {
      if (live_owners.count(s.owner)) {
        gates_survivor = true;
        break;
      }
    }
    if (!gates_survivor) db->RemoveComponent(id);
  }
  *tuples_evicted += n;
  return Status::OK();
}

Status ApplyReweight(WsdDb* db, const DeltaBatch::ReweightOp& op) {
  if (!db->IsLive(op.cid)) {
    return Status::InvalidArgument(
        StrFormat("reweight of dead component %u", op.cid));
  }
  const Component& c = db->component(op.cid);
  if (op.probs.size() != c.NumRows()) {
    return Status::InvalidArgument(
        StrFormat("reweight arity %zu != component %u row count %zu",
                  op.probs.size(), op.cid, c.NumRows()));
  }
  double mass = 0.0;
  for (double p : op.probs) {
    if (!std::isfinite(p) || p < 0.0 || p > 1.0) {
      return Status::OutOfRange(
          StrFormat("reweight probability %g outside [0,1]", p));
    }
    mass += p;
  }
  if (std::abs(mass - 1.0) > 1e-6) {
    return Status::InvalidArgument(
        StrFormat("reweight probabilities sum to %g, expected 1", mass));
  }
  Component& mc = db->mutable_component(op.cid);
  for (size_t r = 0; r < op.probs.size(); ++r) mc.set_prob(r, op.probs[r]);
  return Status::OK();
}

Status ApplySetCell(WsdDb* db, const DeltaBatch::SetCellOp& op) {
  if (!db->IsLive(op.cid)) {
    return Status::InvalidArgument(
        StrFormat("setcell on dead component %u", op.cid));
  }
  const Component& c = db->component(op.cid);
  if (op.row >= c.NumRows() || op.slot >= c.NumSlots()) {
    return Status::OutOfRange(
        StrFormat("setcell (%u,%u) outside component %u (%zu rows, %zu "
                  "slots)",
                  op.row, op.slot, op.cid, c.NumRows(), c.NumSlots()));
  }
  db->mutable_component(op.cid).SetValue(op.row, op.slot, op.value);
  return Status::OK();
}

}  // namespace

Result<DeltaEffects> WsdDb::ApplyDelta(const DeltaBatch& batch) {
  MAYBMS_CHECK(delta_scope_ == nullptr) << "nested ApplyDelta";
  DeltaScope scope;
  delta_scope_ = &scope;

  DeltaEffects effects;
  // Relations whose tuple vectors an op touched directly (storage keys);
  // component-driven dirtiness is derived in the epilogue.
  std::vector<std::string> touched_rels;
  Status st = Status::OK();
  for (const DeltaBatch::Op& op : batch.ops()) {
    st = std::visit(
        [&](const auto& o) -> Status {
          using T = std::decay_t<decltype(o)>;
          if constexpr (std::is_same_v<T, DeltaBatch::InsertOp>) {
            MAYBMS_RETURN_IF_ERROR(ApplyInsert(this, o));
            ++effects.tuples_inserted;
            touched_rels.push_back(ToLower(o.relation));
          } else if constexpr (std::is_same_v<T, DeltaBatch::EvictOp>) {
            MAYBMS_RETURN_IF_ERROR(ApplyEvict(this, o,
                                              &effects.tuples_evicted));
            touched_rels.push_back(ToLower(o.relation));
          } else if constexpr (std::is_same_v<T, DeltaBatch::ReweightOp>) {
            return ApplyReweight(this, o);
          } else if constexpr (std::is_same_v<T, DeltaBatch::SetCellOp>) {
            return ApplySetCell(this, o);
          } else if constexpr (std::is_same_v<T, DeltaBatch::RepairOp>) {
            MAYBMS_ASSIGN_OR_RETURN(
                RepairKeyStats rs,
                maybms::RepairKey(this, o.relation, o.key_attrs,
                                  o.weight_attr));
            effects.repair_groups += rs.groups;
            effects.repair_conflicting_groups += rs.conflicting_groups;
            effects.repair_log2_worlds_added += rs.log2_worlds_added;
            touched_rels.push_back(ToLower(o.relation));
          } else {
            static_assert(std::is_same_v<T, DeltaBatch::EnforceOp>);
            MAYBMS_ASSIGN_OR_RETURN(EnforceStats es,
                                    maybms::Enforce(this, o.constraint));
            effects.enforce_removed_mass += es.removed_mass;
            effects.enforce_rows_removed += es.rows_removed;
            touched_rels.push_back(ToLower(o.constraint.relation()));
          }
          return Status::OK();
        },
        op);
    if (!st.ok()) break;
  }
  delta_scope_ = nullptr;

  // Epilogue — runs even after an op failed: already-applied ops are
  // kept (deterministic partial failure), so their invalidation must
  // happen either way.
  auto sort_unique = [](auto* v) {
    std::sort(v->begin(), v->end());
    v->erase(std::unique(v->begin(), v->end()), v->end());
  };
  sort_unique(&scope.removed);
  sort_unique(&scope.touched_owners);
  sort_unique(&scope.dirty);
  // Created-then-removed (e.g. merged away) components are not dirty —
  // nothing can reference them anymore.
  scope.dirty.erase(
      std::remove_if(scope.dirty.begin(), scope.dirty.end(),
                     [&](ComponentId id) {
                       return std::binary_search(scope.removed.begin(),
                                                 scope.removed.end(), id);
                     }),
      scope.dirty.end());
  sort_unique(&touched_rels);

  std::vector<ComponentId> touched_comps = scope.dirty;
  touched_comps.insert(touched_comps.end(), scope.removed.begin(),
                       scope.removed.end());
  sort_unique(&touched_comps);

  for (auto& [key, rel] : relations_) {
    bool dirty = std::binary_search(touched_rels.begin(), touched_rels.end(),
                                    key);
    if (!dirty && !touched_comps.empty()) {
      for (const WsdTuple& t : rel.tuples()) {
        for (const Cell& c : t.cells) {
          if (c.is_ref() && std::binary_search(touched_comps.begin(),
                                               touched_comps.end(),
                                               c.ref().cid)) {
            dirty = true;
            break;
          }
        }
        if (!dirty) {
          for (OwnerId o : t.deps) {
            if (std::binary_search(scope.touched_owners.begin(),
                                   scope.touched_owners.end(), o)) {
              dirty = true;
              break;
            }
          }
        }
        if (dirty) break;
      }
    }
    if (dirty) {
      rel.set_cached_shards(nullptr);
      effects.dirty_relations.push_back(key);
    }
  }

  if (!batch.empty()) ++mutation_epoch_;
  if (!st.ok()) return st;

  effects.dirty_components = std::move(scope.dirty);
  effects.removed_components = std::move(scope.removed);
  effects.epoch = mutation_epoch_;
  return effects;
}

}  // namespace maybms
