// DeltaBatch: the unified mutation API of a world-set database.
//
// Every mutation of a WsdDb — SQL INSERT / REPAIR KEY / ENFORCE /
// DELETE, the server's per-relation commit path, and the streaming
// ingest entry point — is expressed as an ordered batch of delta ops
// and applied through WsdDb::ApplyDelta. Funneling mutations through
// one door buys three things:
//
//   - *Delta-scoped invalidation.* ApplyDelta records exactly which
//     components each op dirtied or removed and invalidates only the
//     shard caches of relations that reference them, instead of the
//     wholesale reset the ad-hoc mutation paths used to do. The same
//     dirty sets come back to the caller as DeltaEffects, so session-
//     level caches (materialized confidence, server result cache) can
//     be maintained incrementally.
//   - *Durability.* A batch serializes to one WAL record
//     (wal::RecordType::kDelta); replaying the record re-applies the
//     identical ops in the identical order, reproducing the same
//     component ids and owner ids (AddComponent allocates densely from
//     component_slot_count(), which snapshots persist).
//   - *Deterministic partial failure.* Ops apply in order and stop at
//     the first error; already-applied ops stay applied. Replay of the
//     same batch against the same state therefore reproduces the same
//     partial state — the property WAL recovery needs.
//
// Construction is fluent: batch.Insert(...).Reweight(...).Evict(...).
#ifndef MAYBMS_CORE_DELTA_H_
#define MAYBMS_CORE_DELTA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "chase/constraint.h"
#include "common/result.h"
#include "core/builder.h"
#include "core/types.h"
#include "storage/value.h"

namespace maybms {

class WsdDb;

class DeltaBatch {
 public:
  /// Appends one tuple to `relation`; cells follow the builder's
  /// CellSpec (certain values or or-sets; pending cells are rejected at
  /// apply time — joint components cannot be completed across a batch
  /// boundary).
  DeltaBatch& Insert(std::string relation, std::vector<CellSpec> cells);

  /// Removes the oldest `count` tuples of `relation` (the streaming
  /// window retirement primitive) and garbage-collects components that
  /// no surviving tuple references or is gated by.
  DeltaBatch& EvictOldest(std::string relation, size_t count);

  /// Replaces the full probability vector of a live component (must
  /// match its row count and sum to 1).
  DeltaBatch& Reweight(ComponentId cid, std::vector<double> probs);

  /// Overwrites one cell of a live component.
  DeltaBatch& SetCell(ComponentId cid, uint32_t row, uint32_t slot, Value v);

  /// REPAIR KEY as a delta op (core/repair.h).
  DeltaBatch& RepairKey(std::string relation,
                        std::vector<std::string> key_attrs,
                        std::string weight_attr = "");

  /// Constraint enforcement as a delta op (chase/enforce.h).
  DeltaBatch& Enforce(Constraint constraint);

  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  /// Serializes the batch into a WAL payload. Fails on domain
  /// constraints (their predicate is an expression tree with no binary
  /// encoding); the SQL path logs those as statement text instead.
  Result<std::string> Serialize() const;

  /// Parses a payload produced by Serialize.
  static Result<DeltaBatch> Deserialize(std::string_view payload);

  /// One line per op, for logs and the shell.
  std::string ToString() const;

  // Op descriptors (public so ApplyDelta's helpers and tests can name
  // them; batches are still only built through the fluent methods).
  struct InsertOp {
    std::string relation;
    std::vector<CellSpec> cells;
  };
  struct EvictOp {
    std::string relation;
    size_t count = 0;
  };
  struct ReweightOp {
    ComponentId cid = kInvalidComponent;
    std::vector<double> probs;
  };
  struct SetCellOp {
    ComponentId cid = kInvalidComponent;
    uint32_t row = 0;
    uint32_t slot = 0;
    Value value;
  };
  struct RepairOp {
    std::string relation;
    std::vector<std::string> key_attrs;
    std::string weight_attr;
  };
  struct EnforceOp {
    Constraint constraint;
  };
  using Op = std::variant<InsertOp, EvictOp, ReweightOp, SetCellOp, RepairOp,
                          EnforceOp>;

  const std::vector<Op>& ops() const { return ops_; }

 private:
  std::vector<Op> ops_;
};

}  // namespace maybms

#endif  // MAYBMS_CORE_DELTA_H_
