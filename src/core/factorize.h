// Factorization: splitting a component into a product of independent
// sub-components. This is the decomposition step that makes world-set
// decompositions exponentially more succinct than world tables: a merged
// component whose row relation happens to be a product of projections on
// disjoint slot sets is replaced by those (much smaller) projections.
#ifndef MAYBMS_CORE_FACTORIZE_H_
#define MAYBMS_CORE_FACTORIZE_H_

#include "common/result.h"
#include "core/wsd.h"

namespace maybms {

struct FactorizeOptions {
  /// Numeric tolerance when comparing probabilities.
  double eps = 1e-9;
  /// Components with more slots than this skip the O(slots²·rows)
  /// pairwise analysis.
  size_t max_slots = 128;
};

struct FactorizeStats {
  size_t components_split = 0;
  size_t factors_produced = 0;
  size_t rows_before = 0;
  size_t rows_after = 0;
};

/// Splits every splittable component of `db` into independent factors.
///
/// Algorithm: slots are grouped with a union-find where two slots unite
/// when their pairwise joint distribution differs from the product of
/// their marginals; the candidate partition is then verified exactly
/// (distinct-row counts must multiply, and every row's probability must
/// equal the product of its group marginals). On verification failure the
/// component is left unsplit — the test is sound: a split only happens
/// when the product decomposition is exact.
Result<FactorizeStats> Factorize(WsdDb* db, const FactorizeOptions& options = {});

/// A certified product decomposition of a component's slots: the groups
/// and, when a split was certified (groups.size() > 1), the per-group
/// row projections the verification already computed (aligned with
/// `groups`; empty otherwise) so callers don't recompute them.
struct SlotFactorization {
  std::vector<std::vector<uint32_t>> groups;
  std::vector<std::vector<ComponentRow>> projections;
};

/// The partition of `c`'s slots into groups whose joint distribution
/// provably factorizes as the product of the group marginals — the
/// grouping + exact-verification core of Factorize(), reusable without
/// mutating a database (cluster.cc factorizes locally before
/// enumeration). Returns a single group holding all slots when no split
/// is certified (including trivial components: < 2 slots or < 2 rows).
SlotFactorization FactorizeSlots(const Component& c,
                                 const FactorizeOptions& options = {});

/// Projection of `c` onto a slot group: rows restricted to `slots`, equal
/// projections merged with probabilities summed (first-occurrence order).
std::vector<ComponentRow> ProjectSlotGroup(const Component& c,
                                           const std::vector<uint32_t>& slots);

}  // namespace maybms

#endif  // MAYBMS_CORE_FACTORIZE_H_
