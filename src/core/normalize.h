// Normalization of world-set decompositions (Section 2 of the paper).
//
// After lifted operators mark fields with ⊥, normalization restores the
// compact form: ⊥ is propagated across a tuple's fields within each
// component row, tuples that exist in no world are removed, unreferenced
// slots are garbage-collected or collapsed into existence slots, duplicate
// component rows are merged, and fields that became certain are inlined
// back into the template.
#ifndef MAYBMS_CORE_NORMALIZE_H_
#define MAYBMS_CORE_NORMALIZE_H_

#include "common/result.h"
#include "core/wsd.h"

namespace maybms {

/// Which normalization steps to run (all on by default; the ablation
/// benchmark toggles them individually).
struct NormalizeOptions {
  bool propagate_bottom = true;   ///< ⊥ spreads over a tuple's fields per row
  bool remove_dead_tuples = true; ///< drop tuples with existence probability 0
  bool gc_slots = true;           ///< drop/collapse unreferenced slots
  bool dedup_rows = true;         ///< merge identical component rows
  bool inline_certain = true;     ///< move constant slots into the template
};

/// Counters reported by Normalize.
struct NormalizeStats {
  size_t tuples_removed = 0;
  size_t slots_dropped = 0;
  size_t slots_collapsed = 0;  ///< data slots turned into existence slots
  size_t rows_merged = 0;
  size_t cells_inlined = 0;
  size_t components_dropped = 0;
  size_t iterations = 0;
};

/// Runs normalization to fixpoint. Preserves the represented world-set and
/// its probability distribution exactly (verified by the property tests).
Result<NormalizeStats> Normalize(WsdDb* db,
                                 const NormalizeOptions& options = {});

}  // namespace maybms

#endif  // MAYBMS_CORE_NORMALIZE_H_
