// REPAIR KEY: turning a dirty certain relation into a probabilistic
// world-set (the canonical MayBMS construct for *introducing*
// uncertainty, the dual of cleaning).
//
// For every group of tuples agreeing on the key attributes, exactly one
// tuple survives per world; the alternatives are weighted uniformly or by
// a weight attribute. The result represents all minimal key repairs of
// the relation, with probabilities — e.g. conflicting records for the
// same person id become one or-set of records.
#ifndef MAYBMS_CORE_REPAIR_H_
#define MAYBMS_CORE_REPAIR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/wsd.h"

namespace maybms {

struct RepairKeyStats {
  size_t groups = 0;            ///< distinct key values
  size_t conflicting_groups = 0;///< groups with ≥2 alternatives
  size_t tuples = 0;            ///< tuples processed
  double log2_worlds_added = 0; ///< log2 of the repair multiplicity
};

/// Repairs `relation` in place on the key `key_attrs`.
///
/// Requirements: the key cells (and the weight cells, when given) must be
/// certain; weights must be non-negative numbers with a positive sum per
/// group (tuples of weight 0 are impossible and dropped). Non-key cells
/// may already be uncertain; their components are preserved and simply
/// gated by the repair choice.
///
/// With `weight_attr` empty, alternatives are uniform.
Result<RepairKeyStats> RepairKey(WsdDb* db, const std::string& relation,
                                 const std::vector<std::string>& key_attrs,
                                 const std::string& weight_attr = "");

}  // namespace maybms

#endif  // MAYBMS_CORE_REPAIR_H_
