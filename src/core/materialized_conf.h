// MaterializedConf: a content-keyed cache of per-cluster confidence
// results, the incremental-maintenance half of the delta API.
//
// The confidence aggregates all decompose into independent clusters
// (core/cluster.h) whose exact results are pure functions of the
// touched components' *content* plus the member tuples. This cache
// stores those per-cluster results keyed by ClusterIndex::ClusterKey /
// TupleTermKey — 64-bit content hashes — so a re-issued CONF /
// APPROX CONF / ESUM / ECOUNT after a DeltaBatch re-scans only the
// clusters whose components the delta dirtied (their content hash, and
// hence their key, changed) and replays the cheap 1-Lipschitz combine
// over the cached mass maps for everything else.
//
// Invalidation is therefore structural, not imperative: a delta never
// has to find and clear affected entries — dirty clusters simply stop
// matching, and their superseded entries age out of the LRU. Cached
// results are bit-identical to fresh scans (same float-op sequence; see
// ClusterKey's contract), which the differential fuzzer asserts.
//
// Thread safety: all methods are safe under concurrent callers (one
// mutex; entries are immutable shared_ptrs), because the exact CONF
// path evaluates clusters in parallel.
#ifndef MAYBMS_CORE_MATERIALIZED_CONF_H_
#define MAYBMS_CORE_MATERIALIZED_CONF_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "core/cluster.h"

namespace maybms {

/// Key-namespace salts: the same cluster evaluated by different
/// aggregates (or under different option fingerprints, which callers
/// fold in on top) must not share entries.
namespace conf_cache_salt {
inline constexpr uint64_t kConf = 0x636f6e66u;      // exact CONF mass maps
inline constexpr uint64_t kApprox = 0x61707278u;    // APPROX CONF exact-path
inline constexpr uint64_t kEcount = 0x65636e74u;    // ECOUNT existence terms
inline constexpr uint64_t kEsum = 0x6573756du;      // ESUM per-tuple terms
}  // namespace conf_cache_salt

class MaterializedConf {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };

  /// `capacity` bounds the total entry count across both stores (mass
  /// maps and scalar terms); least-recently-used entries evict first.
  explicit MaterializedConf(size_t capacity = 8192)
      : capacity_(capacity < 2 ? 2 : capacity) {}

  MaterializedConf(const MaterializedConf&) = delete;
  MaterializedConf& operator=(const MaterializedConf&) = delete;

  /// Cluster mass maps (exact CONF scans; APPROX CONF's exact phase).
  std::shared_ptr<const TupleProbMap> FindMass(uint64_t key);
  void InsertMass(uint64_t key, std::shared_ptr<const TupleProbMap> map);

  /// Scalar per-tuple terms (ECOUNT existence products, ESUM terms).
  std::optional<double> FindTerm(uint64_t key);
  void InsertTerm(uint64_t key, double value);

  Stats GetStats() const;
  void Clear();

 private:
  template <typename V>
  struct Store {
    struct Entry {
      V value;
      std::list<uint64_t>::iterator lru_it;
    };
    std::unordered_map<uint64_t, Entry> map;
    std::list<uint64_t> lru;  ///< front = most recent
  };

  /// Bumps `key` to the LRU front and returns its entry, or nullptr.
  /// Counts the hit/miss. mu_ held.
  template <typename V>
  V* FindLocked(Store<V>* store, uint64_t key);
  /// Inserts/overwrites and evicts past capacity. mu_ held.
  template <typename V>
  void InsertLocked(Store<V>* store, uint64_t key, V value);

  size_t TotalEntriesLocked() const {
    return mass_.map.size() + term_.map.size();
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  Store<std::shared_ptr<const TupleProbMap>> mass_;
  Store<double> term_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace maybms

#endif  // MAYBMS_CORE_MATERIALIZED_CONF_H_
