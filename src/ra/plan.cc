#include "ra/plan.h"

#include "common/string_util.h"

namespace maybms {

std::string_view AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

PlanPtr Plan::Scan(std::string relation) {
  auto p = std::shared_ptr<Plan>(new Plan());
  p->kind_ = PlanKind::kScan;
  p->relation_ = std::move(relation);
  return p;
}

PlanPtr Plan::Select(PlanPtr input, ExprPtr predicate) {
  auto p = std::shared_ptr<Plan>(new Plan());
  p->kind_ = PlanKind::kSelect;
  p->predicate_ = std::move(predicate);
  p->children_ = {std::move(input)};
  return p;
}

PlanPtr Plan::Project(PlanPtr input, std::vector<ProjectItem> items) {
  auto p = std::shared_ptr<Plan>(new Plan());
  p->kind_ = PlanKind::kProject;
  p->items_ = std::move(items);
  p->children_ = {std::move(input)};
  return p;
}

PlanPtr Plan::Product(PlanPtr left, PlanPtr right) {
  auto p = std::shared_ptr<Plan>(new Plan());
  p->kind_ = PlanKind::kProduct;
  p->children_ = {std::move(left), std::move(right)};
  return p;
}

PlanPtr Plan::Join(PlanPtr left, PlanPtr right, ExprPtr predicate) {
  auto p = std::shared_ptr<Plan>(new Plan());
  p->kind_ = PlanKind::kJoin;
  p->predicate_ = std::move(predicate);
  p->children_ = {std::move(left), std::move(right)};
  return p;
}

PlanPtr Plan::Union(PlanPtr left, PlanPtr right) {
  auto p = std::shared_ptr<Plan>(new Plan());
  p->kind_ = PlanKind::kUnion;
  p->children_ = {std::move(left), std::move(right)};
  return p;
}

PlanPtr Plan::Difference(PlanPtr left, PlanPtr right) {
  auto p = std::shared_ptr<Plan>(new Plan());
  p->kind_ = PlanKind::kDifference;
  p->children_ = {std::move(left), std::move(right)};
  return p;
}

PlanPtr Plan::Distinct(PlanPtr input) {
  auto p = std::shared_ptr<Plan>(new Plan());
  p->kind_ = PlanKind::kDistinct;
  p->children_ = {std::move(input)};
  return p;
}

PlanPtr Plan::Sort(PlanPtr input, std::vector<std::string> columns,
                   std::vector<bool> descending) {
  auto p = std::shared_ptr<Plan>(new Plan());
  p->kind_ = PlanKind::kSort;
  p->columns_ = std::move(columns);
  p->descending_ = std::move(descending);
  p->children_ = {std::move(input)};
  return p;
}

PlanPtr Plan::Limit(PlanPtr input, size_t limit) {
  auto p = std::shared_ptr<Plan>(new Plan());
  p->kind_ = PlanKind::kLimit;
  p->limit_ = limit;
  p->children_ = {std::move(input)};
  return p;
}

PlanPtr Plan::Aggregate(PlanPtr input, std::vector<std::string> group_by,
                        std::vector<AggSpec> aggs) {
  auto p = std::shared_ptr<Plan>(new Plan());
  p->kind_ = PlanKind::kAggregate;
  p->columns_ = std::move(group_by);
  p->aggs_ = std::move(aggs);
  p->children_ = {std::move(input)};
  return p;
}

std::string Plan::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + NodeString();
  for (const auto& c : children_) {
    out += "\n" + c->ToString(indent + 1);
  }
  return out;
}

std::string Plan::NodeString() const {
  std::string out;
  switch (kind_) {
    case PlanKind::kScan:
      out += "Scan " + relation_;
      break;
    case PlanKind::kSelect:
      out += "Select " + predicate_->ToString();
      break;
    case PlanKind::kProject: {
      out += "Project ";
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ", ";
        out += items_[i].expr->ToString() + " AS " + items_[i].name;
      }
      break;
    }
    case PlanKind::kProduct:
      out += "Product";
      break;
    case PlanKind::kJoin:
      out += "Join " + (predicate_ ? predicate_->ToString() : "true");
      break;
    case PlanKind::kUnion:
      out += "Union";
      break;
    case PlanKind::kDifference:
      out += "Difference";
      break;
    case PlanKind::kDistinct:
      out += "Distinct";
      break;
    case PlanKind::kSort: {
      out += "Sort ";
      for (size_t i = 0; i < columns_.size(); ++i) {
        if (i) out += ", ";
        out += columns_[i];
        if (i < descending_.size() && descending_[i]) out += " DESC";
      }
      break;
    }
    case PlanKind::kLimit:
      out += StrFormat("Limit %zu", limit_);
      break;
    case PlanKind::kAggregate: {
      out += "Aggregate group by [";
      for (size_t i = 0; i < columns_.size(); ++i) {
        if (i) out += ", ";
        out += columns_[i];
      }
      out += "] aggs [";
      for (size_t i = 0; i < aggs_.size(); ++i) {
        if (i) out += ", ";
        out += std::string(AggFuncToString(aggs_[i].func)) + "(" +
               (aggs_[i].arg ? aggs_[i].arg->ToString() : "*") + ") AS " +
               aggs_[i].name;
      }
      out += "]";
      break;
    }
  }
  return out;
}

}  // namespace maybms
