// Scalar expressions over tuples: literals, column references, arithmetic,
// comparisons and boolean connectives with SQL three-valued logic.
//
// Expressions are shared between the conventional engine (src/ra) and the
// lifted WSD operators (src/core), which evaluate them on combinations of
// component rows.
#ifndef MAYBMS_RA_EXPR_H_
#define MAYBMS_RA_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/relation.h"
#include "storage/schema.h"

namespace maybms {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Expression node kinds.
enum class ExprKind : uint8_t {
  kConst,    ///< literal Value
  kColumn,   ///< reference to an attribute (by name until bound, then index)
  kCompare,  ///< = <> < <= > >=
  kArith,    ///< + - * /
  kAnd,
  kOr,
  kNot,
  kIsNull,  ///< IS NULL
  kIn,      ///< column IN (literal list)
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv };

std::string_view CompareOpToString(CompareOp op);
std::string_view ArithOpToString(ArithOp op);

/// Immutable expression tree node. Build via the factory functions below,
/// bind against a Schema with Bind(), then evaluate with Eval().
class Expr {
 public:
  ExprKind kind() const { return kind_; }

  // --- factories ---------------------------------------------------------
  static ExprPtr Const(Value v);
  static ExprPtr Column(std::string name);
  /// Column already resolved to an index (used by planners).
  static ExprPtr ColumnIdx(size_t idx, std::string name = "");
  static ExprPtr Compare(CompareOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r);
  static ExprPtr And(ExprPtr l, ExprPtr r);
  static ExprPtr Or(ExprPtr l, ExprPtr r);
  static ExprPtr Not(ExprPtr e);
  static ExprPtr IsNull(ExprPtr e, bool negated);
  static ExprPtr In(ExprPtr e, std::vector<Value> set);

  // --- accessors (valid per kind) ----------------------------------------
  const Value& const_value() const { return value_; }
  const std::string& column_name() const { return name_; }
  /// Bound column index; only meaningful after Bind().
  size_t column_index() const { return col_idx_; }
  bool is_bound() const { return bound_; }
  CompareOp compare_op() const { return cmp_; }
  ArithOp arith_op() const { return arith_; }
  bool is_null_negated() const { return negated_; }
  const std::vector<Value>& in_set() const { return in_set_; }
  const ExprPtr& left() const { return children_[0]; }
  const ExprPtr& right() const { return children_[1]; }
  const std::vector<ExprPtr>& children() const { return children_; }

  /// Returns a copy of this tree with all column names resolved against
  /// `schema`. Fails if a column is missing.
  Result<ExprPtr> BindAgainst(const Schema& schema) const;

  /// Evaluates the bound expression on one tuple. NULL propagates with SQL
  /// three-valued logic; boolean results are Bool or NULL.
  ///
  /// ⊥ input makes the result ⊥ — callers in the lifted engine treat any
  /// ⊥ involvement as "tuple absent" before interpreting predicates.
  Result<Value> Eval(const Tuple& tuple) const;

  /// Collects the bound column indexes read by this tree.
  void CollectColumns(std::vector<size_t>* out) const;

  /// Collects unbound column names read by this tree.
  void CollectColumnNames(std::vector<std::string>* out) const;

  std::string ToString() const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kConst;
  Value value_;                  // kConst
  std::string name_;             // kColumn
  size_t col_idx_ = 0;           // kColumn, after bind
  bool bound_ = false;           // kColumn
  CompareOp cmp_ = CompareOp::kEq;
  ArithOp arith_ = ArithOp::kAdd;
  bool negated_ = false;         // kIsNull
  std::vector<Value> in_set_;    // kIn
  std::vector<ExprPtr> children_;
};

/// Evaluates a bound predicate; returns true only for Bool(true) (NULL and
/// false both reject, as in SQL WHERE).
Result<bool> EvalPredicate(const Expr& pred, const Tuple& tuple);

/// Infers the output type of a bound expression given the input schema;
/// falls back to kString when undecidable statically.
ValueType InferExprType(const Expr& e, const Schema& in);

}  // namespace maybms

#endif  // MAYBMS_RA_EXPR_H_
