// Logical plans for the conventional (single-world) engine.
//
// The same plan shape is reused by the lifted executor in src/core, which
// interprets each node over a world-set decomposition instead of a certain
// relation.
#ifndef MAYBMS_RA_PLAN_H_
#define MAYBMS_RA_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "ra/expr.h"

namespace maybms {

class Plan;
using PlanPtr = std::shared_ptr<const Plan>;

enum class PlanKind : uint8_t {
  kScan,        ///< named base relation
  kSelect,      ///< σ predicate
  kProject,     ///< π over expressions (bag semantics)
  kProduct,     ///< ×
  kJoin,        ///< ⋈ predicate (σ over ×, with equi-join fast path)
  kUnion,       ///< ∪ (bag)
  kDifference,  ///< − (bag: multiplicity-aware)
  kDistinct,    ///< duplicate elimination
  kSort,        ///< order by column list
  kLimit,
  kAggregate,   ///< group-by + aggregates
};

enum class AggFunc : uint8_t { kCount, kSum, kMin, kMax, kAvg };

std::string_view AggFuncToString(AggFunc f);

/// One aggregate in an Aggregate node, e.g. SUM(income) AS total.
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  ExprPtr arg;       ///< null for COUNT(*)
  std::string name;  ///< output attribute name
};

/// One output column of a Project node.
struct ProjectItem {
  ExprPtr expr;
  std::string name;  ///< output attribute name
};

/// Immutable logical plan node; construct via the factories.
class Plan {
 public:
  PlanKind kind() const { return kind_; }

  static PlanPtr Scan(std::string relation);
  static PlanPtr Select(PlanPtr input, ExprPtr predicate);
  static PlanPtr Project(PlanPtr input, std::vector<ProjectItem> items);
  static PlanPtr Product(PlanPtr left, PlanPtr right);
  static PlanPtr Join(PlanPtr left, PlanPtr right, ExprPtr predicate);
  static PlanPtr Union(PlanPtr left, PlanPtr right);
  static PlanPtr Difference(PlanPtr left, PlanPtr right);
  static PlanPtr Distinct(PlanPtr input);
  static PlanPtr Sort(PlanPtr input, std::vector<std::string> columns,
                      std::vector<bool> descending);
  static PlanPtr Limit(PlanPtr input, size_t limit);
  static PlanPtr Aggregate(PlanPtr input, std::vector<std::string> group_by,
                           std::vector<AggSpec> aggs);

  const std::string& relation() const { return relation_; }
  const ExprPtr& predicate() const { return predicate_; }
  const std::vector<ProjectItem>& project_items() const { return items_; }
  const std::vector<std::string>& sort_columns() const { return columns_; }
  const std::vector<bool>& sort_descending() const { return descending_; }
  size_t limit() const { return limit_; }
  const std::vector<std::string>& group_by() const { return columns_; }
  const std::vector<AggSpec>& aggregates() const { return aggs_; }
  const PlanPtr& left() const { return children_[0]; }
  const PlanPtr& right() const { return children_[1]; }
  const PlanPtr& input() const { return children_[0]; }
  const std::vector<PlanPtr>& children() const { return children_; }

  /// Single-line rendering of this node alone (no children), e.g.
  /// "Select (a = 1)". Shared by ToString and the optimizer's annotated
  /// EXPLAIN rendering.
  std::string NodeString() const;

  /// Multi-line indented rendering (EXPLAIN output).
  std::string ToString(int indent = 0) const;

 private:
  Plan() = default;

  PlanKind kind_ = PlanKind::kScan;
  std::string relation_;
  ExprPtr predicate_;
  std::vector<ProjectItem> items_;
  std::vector<std::string> columns_;
  std::vector<bool> descending_;
  size_t limit_ = 0;
  std::vector<AggSpec> aggs_;
  std::vector<PlanPtr> children_;
};

}  // namespace maybms

#endif  // MAYBMS_RA_PLAN_H_
