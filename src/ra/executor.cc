#include "ra/executor.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/string_util.h"

namespace maybms {

namespace {

// Local alias; shared implementation lives in ra/expr.cc.
ValueType InferType(const Expr& e, const Schema& in) {
  return InferExprType(e, in);
}

// Detects a conjunction of equality predicates between left-side and
// right-side columns of a join; returns pairs of (left idx, right idx in
// right schema) and the residual predicate (bound against the concat
// schema) or nullptr.
struct EquiJoinKeys {
  std::vector<size_t> left_cols;
  std::vector<size_t> right_cols;  // indexes into the *right* schema
  ExprPtr residual;                // bound against concatenated schema
};

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind() == ExprKind::kAnd) {
    SplitConjuncts(e->left(), out);
    SplitConjuncts(e->right(), out);
  } else {
    out->push_back(e);
  }
}

EquiJoinKeys AnalyzeJoinPredicate(const ExprPtr& bound_pred,
                                  size_t left_arity) {
  EquiJoinKeys keys;
  if (!bound_pred) return keys;
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(bound_pred, &conjuncts);
  std::vector<ExprPtr> residuals;
  for (const auto& c : conjuncts) {
    if (c->kind() == ExprKind::kCompare &&
        c->compare_op() == CompareOp::kEq &&
        c->left()->kind() == ExprKind::kColumn &&
        c->right()->kind() == ExprKind::kColumn) {
      size_t a = c->left()->column_index();
      size_t b = c->right()->column_index();
      if (a < left_arity && b >= left_arity) {
        keys.left_cols.push_back(a);
        keys.right_cols.push_back(b - left_arity);
        continue;
      }
      if (b < left_arity && a >= left_arity) {
        keys.left_cols.push_back(b);
        keys.right_cols.push_back(a - left_arity);
        continue;
      }
    }
    residuals.push_back(c);
  }
  if (!residuals.empty()) {
    ExprPtr acc = residuals[0];
    for (size_t i = 1; i < residuals.size(); ++i) {
      acc = Expr::And(acc, residuals[i]);
    }
    keys.residual = acc;
  }
  return keys;
}

Result<Relation> ExecNode(const PlanPtr& plan, const Catalog& catalog,
                          const ExecOptions& opts);

/// Rows per packed evaluation chunk in the row-major (Relation) paths.
constexpr size_t kRowBatch = 1024;

// Packs column `c` of rows [base, base+n) into `out`. Strings are
// interned into the process-global ValuePool (required for compare-by-id
// in the compiled programs); pool entries are never evicted, so distinct
// string contents seen by compiled conventional queries are retained for
// the process lifetime — the intended trade for the census-style,
// bounded-domain workloads this engine targets.
void PackColumn(const Relation& rel, size_t c, size_t base, size_t n,
                PackedValue* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = PackedValue::FromValue(rel.row(base + i)[c]);
  }
}

Result<Relation> ExecProject(const Plan& plan, const Catalog& catalog,
                             const ExecOptions& opts) {
  MAYBMS_ASSIGN_OR_RETURN(Relation in, ExecNode(plan.input(), catalog, opts));
  struct Item {
    ExprPtr expr;
    bool is_column = false;
    size_t col = 0;
    std::optional<CompiledExpr> prog;
  };
  std::vector<Item> items;
  items.reserve(plan.project_items().size());
  Schema out_schema;
  // Probe duplicate output names against a set of lower-cased names in
  // O(1) instead of a Schema::IndexOf scan per candidate (which made the
  // loop quadratic in the item count).
  std::unordered_set<std::string> used_names;
  for (const auto& item : plan.project_items()) {
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr b, item.expr->BindAgainst(in.schema()));
    ValueType t = InferType(*b, in.schema());
    std::string name = item.name;
    int k = 2;
    while (used_names.count(ToLower(name))) {
      name = item.name + "_" + std::to_string(k++);
    }
    used_names.insert(ToLower(name));
    MAYBMS_RETURN_IF_ERROR(out_schema.Add({name, t}));
    Item it;
    it.expr = std::move(b);
    if (it.expr->kind() == ExprKind::kColumn) {
      it.is_column = true;
      it.col = it.expr->column_index();
    } else if (opts.compile_expressions) {
      it.prog = CompiledExpr::Compile(*it.expr);
    }
    items.push_back(std::move(it));
  }
  Relation out("", out_schema);
  out.Reserve(in.NumRows());

  // Union of input columns the compiled items read; they are packed once
  // per chunk and shared across items.
  std::vector<size_t> needed;
  for (const auto& it : items) {
    if (it.prog) {
      needed.insert(needed.end(), it.prog->columns().begin(),
                    it.prog->columns().end());
    }
  }
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());

  if (needed.empty()) {
    // Pure column/const projections (or compilation off): row at a time.
    for (const auto& row : in.rows()) {
      Tuple t;
      t.reserve(items.size());
      for (const auto& it : items) {
        if (it.is_column) {
          t.push_back(row[it.col]);
        } else {
          MAYBMS_ASSIGN_OR_RETURN(Value v, it.expr->Eval(row));
          t.push_back(std::move(v));
        }
      }
      out.AppendUnchecked(std::move(t));
    }
    return out;
  }

  std::unordered_map<size_t, size_t> slot_of;
  for (size_t s = 0; s < needed.size(); ++s) slot_of[needed[s]] = s;
  std::vector<std::vector<PackedValue>> packed(
      needed.size(), std::vector<PackedValue>(kRowBatch));
  struct ItemState {
    std::vector<ExprInput> inputs;
    std::vector<PackedValue> results;
    std::vector<size_t> fallback;
    size_t fi = 0;  // cursor into fallback during row-major consumption
    std::optional<ExprBatchEvaluator> eval;
  };
  std::vector<ItemState> st(items.size());
  for (size_t k = 0; k < items.size(); ++k) {
    if (!items[k].prog) continue;
    const auto& cols = items[k].prog->columns();
    st[k].inputs.resize(cols.size());
    for (size_t s = 0; s < cols.size(); ++s) {
      st[k].inputs[s] = {packed[slot_of[cols[s]]].data(), false};
    }
    st[k].results.resize(kRowBatch);
    st[k].eval.emplace(&*items[k].prog);
  }
  for (size_t base = 0; base < in.NumRows(); base += kRowBatch) {
    const size_t n = std::min(kRowBatch, in.NumRows() - base);
    for (size_t s = 0; s < needed.size(); ++s) {
      PackColumn(in, needed[s], base, n, packed[s].data());
    }
    for (size_t k = 0; k < items.size(); ++k) {
      if (!items[k].prog) continue;
      st[k].fallback.clear();
      st[k].fi = 0;
      st[k].eval->Eval(st[k].inputs.data(), 0, n, st[k].results.data(),
                       &st[k].fallback);
    }
    // Consume row-major so errors surface in the interpreter's order.
    for (size_t i = 0; i < n; ++i) {
      const Tuple& row = in.row(base + i);
      Tuple t;
      t.reserve(items.size());
      for (size_t k = 0; k < items.size(); ++k) {
        const Item& it = items[k];
        if (it.is_column) {
          t.push_back(row[it.col]);
          continue;
        }
        if (it.prog) {
          ItemState& is = st[k];
          if (is.fi < is.fallback.size() && is.fallback[is.fi] == i) {
            ++is.fi;
            MAYBMS_ASSIGN_OR_RETURN(Value v, it.expr->Eval(row));
            t.push_back(std::move(v));
          } else {
            t.push_back(is.results[i].ToValue());
          }
          continue;
        }
        MAYBMS_ASSIGN_OR_RETURN(Value v, it.expr->Eval(row));
        t.push_back(std::move(v));
      }
      out.AppendUnchecked(std::move(t));
    }
  }
  return out;
}

// Buffers (left row, right row) pairs and applies a predicate over the
// concatenated tuple. With a compiled program, pairs are packed into
// column chunks and evaluated in one pass — the output tuple is only
// materialized for passing pairs. Pairs are flushed in arrival order, so
// emission and error order match the per-pair interpreted loop.
class PairFilter {
 public:
  PairFilter(const Relation& l, const Relation& r, const Expr* pred,
             const CompiledExpr* prog, Relation* out)
      : l_(l), r_(r), pred_(pred), prog_(prog), out_(out) {
    if (prog_ == nullptr) return;
    const auto& cols = prog_->columns();
    packed_.assign(cols.size(), std::vector<PackedValue>(kRowBatch));
    inputs_.resize(cols.size());
    for (size_t s = 0; s < cols.size(); ++s) {
      inputs_[s] = {packed_[s].data(), false};
    }
    results_.resize(kRowBatch);
    eval_.emplace(prog_);
    pairs_.reserve(kRowBatch);
  }

  Status Add(size_t i, size_t j) {
    if (prog_ == nullptr) {
      Tuple t = Concat(i, j);
      if (pred_ != nullptr) {
        MAYBMS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*pred_, t));
        if (!pass) return Status::OK();
      }
      out_->AppendUnchecked(std::move(t));
      return Status::OK();
    }
    pairs_.emplace_back(i, j);
    if (pairs_.size() == kRowBatch) return Flush();
    return Status::OK();
  }

  Status Flush() {
    if (prog_ == nullptr || pairs_.empty()) return Status::OK();
    const auto& cols = prog_->columns();
    const size_t n = pairs_.size();
    const size_t left_arity = l_.schema().size();
    for (size_t s = 0; s < cols.size(); ++s) {
      const size_t c = cols[s];
      PackedValue* dst = packed_[s].data();
      if (c < left_arity) {
        for (size_t k = 0; k < n; ++k) {
          dst[k] = PackedValue::FromValue(l_.row(pairs_[k].first)[c]);
        }
      } else {
        for (size_t k = 0; k < n; ++k) {
          dst[k] =
              PackedValue::FromValue(r_.row(pairs_[k].second)[c - left_arity]);
        }
      }
    }
    fallback_.clear();
    eval_->Eval(inputs_.data(), 0, n, results_.data(), &fallback_);
    size_t fi = 0;
    for (size_t k = 0; k < n; ++k) {
      bool need_interp = fi < fallback_.size() && fallback_[fi] == k;
      if (need_interp) ++fi;
      bool pass = false;
      if (!need_interp) {
        pass = PackedPredicate(results_[k], &need_interp);
      }
      if (need_interp) {
        Tuple t = Concat(pairs_[k].first, pairs_[k].second);
        MAYBMS_ASSIGN_OR_RETURN(pass, EvalPredicate(*pred_, t));
        if (pass) out_->AppendUnchecked(std::move(t));
      } else if (pass) {
        out_->AppendUnchecked(Concat(pairs_[k].first, pairs_[k].second));
      }
    }
    pairs_.clear();
    return Status::OK();
  }

 private:
  Tuple Concat(size_t i, size_t j) const {
    Tuple t = l_.row(i);
    const Tuple& right = r_.row(j);
    t.insert(t.end(), right.begin(), right.end());
    return t;
  }

  const Relation& l_;
  const Relation& r_;
  const Expr* pred_;
  const CompiledExpr* prog_;
  Relation* out_;
  std::vector<std::pair<size_t, size_t>> pairs_;
  std::vector<std::vector<PackedValue>> packed_;
  std::vector<ExprInput> inputs_;
  std::vector<PackedValue> results_;
  std::vector<size_t> fallback_;
  std::optional<ExprBatchEvaluator> eval_;
};

Result<Relation> ExecProductOrJoin(const Plan& plan, const Catalog& catalog,
                                   const ExecOptions& opts) {
  MAYBMS_ASSIGN_OR_RETURN(Relation l, ExecNode(plan.left(), catalog, opts));
  MAYBMS_ASSIGN_OR_RETURN(Relation r, ExecNode(plan.right(), catalog, opts));
  Schema out_schema = Schema::Concat(
      l.schema(), r.schema(), r.name().empty() ? "r" : r.name());
  Relation out("", out_schema);

  ExprPtr bound_pred;
  if (plan.kind() == PlanKind::kJoin && plan.predicate()) {
    MAYBMS_ASSIGN_OR_RETURN(bound_pred,
                            plan.predicate()->BindAgainst(out_schema));
  }

  EquiJoinKeys keys = AnalyzeJoinPredicate(bound_pred, l.schema().size());
  if (!keys.left_cols.empty()) {
    std::optional<CompiledExpr> residual_prog;
    if (keys.residual && opts.compile_expressions) {
      residual_prog = CompiledExpr::Compile(*keys.residual);
    }
    PairFilter filter(l, r, keys.residual.get(),
                      residual_prog ? &*residual_prog : nullptr, &out);
    // Hash join on the equality keys.
    std::unordered_map<size_t, std::vector<size_t>> table;
    table.reserve(r.NumRows() * 2);
    for (size_t j = 0; j < r.NumRows(); ++j) {
      size_t h = 0;
      for (size_t k : keys.right_cols) HashCombine(&h, r.row(j)[k].Hash());
      table[h].push_back(j);
    }
    for (size_t i = 0; i < l.NumRows(); ++i) {
      size_t h = 0;
      for (size_t k : keys.left_cols) HashCombine(&h, l.row(i)[k].Hash());
      auto it = table.find(h);
      if (it == table.end()) continue;
      for (size_t j : it->second) {
        bool match = true;
        for (size_t k = 0; k < keys.left_cols.size(); ++k) {
          const Value& a = l.row(i)[keys.left_cols[k]];
          const Value& b = r.row(j)[keys.right_cols[k]];
          if (a.is_null() || b.is_null() || !(a == b)) {
            match = false;
            break;
          }
        }
        if (!match) continue;
        MAYBMS_RETURN_IF_ERROR(filter.Add(i, j));
      }
    }
    MAYBMS_RETURN_IF_ERROR(filter.Flush());
    return out;
  }

  // Nested-loop product with optional predicate.
  std::optional<CompiledExpr> prog;
  if (bound_pred && opts.compile_expressions) {
    prog = CompiledExpr::Compile(*bound_pred);
  }
  PairFilter filter(l, r, bound_pred.get(), prog ? &*prog : nullptr, &out);
  for (size_t i = 0; i < l.NumRows(); ++i) {
    for (size_t j = 0; j < r.NumRows(); ++j) {
      MAYBMS_RETURN_IF_ERROR(filter.Add(i, j));
    }
  }
  MAYBMS_RETURN_IF_ERROR(filter.Flush());
  return out;
}

Result<Relation> ExecUnion(const Plan& plan, const Catalog& catalog,
                      const ExecOptions& opts) {
  MAYBMS_ASSIGN_OR_RETURN(Relation l, ExecNode(plan.left(), catalog, opts));
  MAYBMS_ASSIGN_OR_RETURN(Relation r, ExecNode(plan.right(), catalog, opts));
  if (l.schema().size() != r.schema().size()) {
    return Status::InvalidArgument(
        StrFormat("UNION arity mismatch: %zu vs %zu", l.schema().size(),
                  r.schema().size()));
  }
  Relation out("", l.schema());
  out.Reserve(l.NumRows() + r.NumRows());
  for (const auto& row : l.rows()) out.AppendUnchecked(row);
  for (const auto& row : r.rows()) out.AppendUnchecked(row);
  return out;
}

Result<Relation> ExecDifference(const Plan& plan, const Catalog& catalog,
                      const ExecOptions& opts) {
  MAYBMS_ASSIGN_OR_RETURN(Relation l, ExecNode(plan.left(), catalog, opts));
  MAYBMS_ASSIGN_OR_RETURN(Relation r, ExecNode(plan.right(), catalog, opts));
  if (l.schema().size() != r.schema().size()) {
    return Status::InvalidArgument(
        StrFormat("EXCEPT arity mismatch: %zu vs %zu", l.schema().size(),
                  r.schema().size()));
  }
  // Anti-join semantics (SQL EXCEPT): a left row survives iff no equal
  // right row exists; left multiplicity is preserved. This matches the
  // lifted Difference evaluated per world.
  std::unordered_map<size_t, std::vector<Tuple>> right_set;
  for (const auto& row : r.rows()) {
    auto& bucket = right_set[TupleHash(row)];
    bool found = false;
    for (const auto& t : bucket) {
      if (TupleCompare(t, row) == 0) {
        found = true;
        break;
      }
    }
    if (!found) bucket.push_back(row);
  }
  Relation out("", l.schema());
  for (const auto& row : l.rows()) {
    auto it = right_set.find(TupleHash(row));
    bool matched = false;
    if (it != right_set.end()) {
      for (const auto& t : it->second) {
        if (TupleCompare(t, row) == 0) {
          matched = true;
          break;
        }
      }
    }
    if (!matched) out.AppendUnchecked(row);
  }
  return out;
}

Result<Relation> ExecDistinct(const Plan& plan, const Catalog& catalog,
                      const ExecOptions& opts) {
  MAYBMS_ASSIGN_OR_RETURN(Relation in, ExecNode(plan.input(), catalog, opts));
  Relation out("", in.schema());
  std::unordered_map<size_t, std::vector<size_t>> seen;
  for (const auto& row : in.rows()) {
    size_t h = TupleHash(row);
    auto& bucket = seen[h];
    bool dup = false;
    for (size_t idx : bucket) {
      if (TupleCompare(out.row(idx), row) == 0) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      bucket.push_back(out.NumRows());
      out.AppendUnchecked(row);
    }
  }
  return out;
}

Result<Relation> ExecSort(const Plan& plan, const Catalog& catalog,
                      const ExecOptions& opts) {
  MAYBMS_ASSIGN_OR_RETURN(Relation in, ExecNode(plan.input(), catalog, opts));
  std::vector<size_t> idxs;
  for (const auto& name : plan.sort_columns()) {
    MAYBMS_ASSIGN_OR_RETURN(size_t i, in.schema().Resolve(name));
    idxs.push_back(i);
  }
  const auto& desc = plan.sort_descending();
  Relation out = in;
  std::vector<Tuple> rows = in.rows();
  std::stable_sort(rows.begin(), rows.end(),
                   [&](const Tuple& a, const Tuple& b) {
                     for (size_t k = 0; k < idxs.size(); ++k) {
                       int c = a[idxs[k]].Compare(b[idxs[k]]);
                       if (k < desc.size() && desc[k]) c = -c;
                       if (c != 0) return c < 0;
                     }
                     return false;
                   });
  Relation sorted("", in.schema());
  for (auto& row : rows) sorted.AppendUnchecked(std::move(row));
  return sorted;
}

Result<Relation> ExecAggregate(const Plan& plan, const Catalog& catalog,
                      const ExecOptions& opts) {
  MAYBMS_ASSIGN_OR_RETURN(Relation in, ExecNode(plan.input(), catalog, opts));
  std::vector<size_t> group_idx;
  Schema out_schema;
  for (const auto& name : plan.group_by()) {
    MAYBMS_ASSIGN_OR_RETURN(size_t i, in.schema().Resolve(name));
    group_idx.push_back(i);
    MAYBMS_RETURN_IF_ERROR(out_schema.Add(in.schema().attr(i)));
  }
  std::vector<ExprPtr> bound_args;
  for (const auto& agg : plan.aggregates()) {
    ExprPtr b;
    if (agg.arg) {
      MAYBMS_ASSIGN_OR_RETURN(b, agg.arg->BindAgainst(in.schema()));
    }
    bound_args.push_back(b);
    ValueType t = ValueType::kDouble;
    if (agg.func == AggFunc::kCount) t = ValueType::kInt;
    else if (b && (agg.func == AggFunc::kMin || agg.func == AggFunc::kMax)) {
      t = InferType(*b, in.schema());
    } else if (b && agg.func == AggFunc::kSum &&
               InferType(*b, in.schema()) == ValueType::kInt) {
      t = ValueType::kInt;
    }
    MAYBMS_RETURN_IF_ERROR(out_schema.Add({agg.name, t}));
  }

  struct GroupState {
    Tuple key;
    std::vector<double> sums;
    std::vector<int64_t> int_sums;
    std::vector<bool> int_exact;
    std::vector<Value> mins, maxs;
    std::vector<int64_t> counts;  // per-agg non-null count
    int64_t rows = 0;
  };
  std::unordered_map<size_t, std::vector<GroupState>> groups;
  std::vector<const GroupState*> order;  // first-seen order

  size_t n_aggs = plan.aggregates().size();
  for (const auto& row : in.rows()) {
    Tuple key;
    key.reserve(group_idx.size());
    for (size_t i : group_idx) key.push_back(row[i]);
    size_t h = TupleHash(key);
    auto& bucket = groups[h];
    GroupState* g = nullptr;
    for (auto& cand : bucket) {
      if (TupleCompare(cand.key, key) == 0) {
        g = &cand;
        break;
      }
    }
    if (!g) {
      bucket.push_back(GroupState{});
      g = &bucket.back();
      g->key = std::move(key);
      g->sums.assign(n_aggs, 0.0);
      g->int_sums.assign(n_aggs, 0);
      g->int_exact.assign(n_aggs, true);
      g->mins.assign(n_aggs, Value::Null());
      g->maxs.assign(n_aggs, Value::Null());
      g->counts.assign(n_aggs, 0);
      order.push_back(g);
    }
    g->rows += 1;
    for (size_t a = 0; a < n_aggs; ++a) {
      const auto& spec = plan.aggregates()[a];
      if (!bound_args[a]) {  // COUNT(*)
        g->counts[a] += 1;
        continue;
      }
      MAYBMS_ASSIGN_OR_RETURN(Value v, bound_args[a]->Eval(row));
      if (v.is_null() || v.is_bottom()) continue;
      g->counts[a] += 1;
      switch (spec.func) {
        case AggFunc::kCount:
          break;
        case AggFunc::kSum:
        case AggFunc::kAvg:
          if (!v.is_numeric()) {
            return Status::TypeMismatch("SUM/AVG over non-numeric value");
          }
          g->sums[a] += v.NumericValue();
          if (v.is_int()) g->int_sums[a] += v.as_int();
          else g->int_exact[a] = false;
          break;
        case AggFunc::kMin:
          if (g->mins[a].is_null() || v.Compare(g->mins[a]) < 0) g->mins[a] = v;
          break;
        case AggFunc::kMax:
          if (g->maxs[a].is_null() || v.Compare(g->maxs[a]) > 0) g->maxs[a] = v;
          break;
      }
    }
  }

  Relation out("", out_schema);
  // Global aggregate over empty input still yields one row.
  if (order.empty() && group_idx.empty()) {
    Tuple t;
    for (size_t a = 0; a < n_aggs; ++a) {
      if (plan.aggregates()[a].func == AggFunc::kCount) {
        t.push_back(Value::Int(0));
      } else {
        t.push_back(Value::Null());
      }
    }
    out.AppendUnchecked(std::move(t));
    return out;
  }
  for (const GroupState* g : order) {
    Tuple t = g->key;
    for (size_t a = 0; a < n_aggs; ++a) {
      const auto& spec = plan.aggregates()[a];
      switch (spec.func) {
        case AggFunc::kCount:
          t.push_back(Value::Int(g->counts[a]));
          break;
        case AggFunc::kSum:
          if (g->counts[a] == 0) t.push_back(Value::Null());
          else if (g->int_exact[a]) t.push_back(Value::Int(g->int_sums[a]));
          else t.push_back(Value::Double(g->sums[a]));
          break;
        case AggFunc::kAvg:
          if (g->counts[a] == 0) t.push_back(Value::Null());
          else t.push_back(
              Value::Double(g->sums[a] / static_cast<double>(g->counts[a])));
          break;
        case AggFunc::kMin:
          t.push_back(g->mins[a]);
          break;
        case AggFunc::kMax:
          t.push_back(g->maxs[a]);
          break;
      }
    }
    out.AppendUnchecked(std::move(t));
  }
  return out;
}

Result<Relation> ExecSelect(const Plan& plan, const Catalog& catalog,
                            const ExecOptions& opts) {
  MAYBMS_ASSIGN_OR_RETURN(Relation in, ExecNode(plan.input(), catalog, opts));
  MAYBMS_ASSIGN_OR_RETURN(ExprPtr pred,
                          plan.predicate()->BindAgainst(in.schema()));
  Relation out("", in.schema());
  std::optional<CompiledExpr> prog;
  if (opts.compile_expressions) prog = CompiledExpr::Compile(*pred);
  if (!prog) {
    for (const auto& row : in.rows()) {
      MAYBMS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*pred, row));
      if (pass) out.AppendUnchecked(row);
    }
    return out;
  }
  const auto& cols = prog->columns();
  const size_t n_rows = in.NumRows();
  const size_t threads =
      opts.num_threads ? opts.num_threads : DefaultNumThreads();
  if (n_rows < opts.parallel_row_threshold || threads <= 1) {
    // Small input: one reusable set of buffers, serial batches.
    std::vector<std::vector<PackedValue>> packed(
        cols.size(), std::vector<PackedValue>(kRowBatch));
    std::vector<ExprInput> inputs(cols.size());
    for (size_t s = 0; s < cols.size(); ++s) {
      inputs[s] = {packed[s].data(), false};
    }
    std::vector<PackedValue> results(kRowBatch);
    std::vector<size_t> fallback;
    ExprBatchEvaluator eval(&*prog);
    for (size_t base = 0; base < n_rows; base += kRowBatch) {
      const size_t n = std::min(kRowBatch, n_rows - base);
      for (size_t s = 0; s < cols.size(); ++s) {
        PackColumn(in, cols[s], base, n, packed[s].data());
      }
      fallback.clear();
      eval.Eval(inputs.data(), 0, n, results.data(), &fallback);
      size_t fi = 0;
      for (size_t i = 0; i < n; ++i) {
        bool need_interp = fi < fallback.size() && fallback[fi] == i;
        if (need_interp) ++fi;
        bool pass = false;
        if (!need_interp) pass = PackedPredicate(results[i], &need_interp);
        if (need_interp) {
          MAYBMS_ASSIGN_OR_RETURN(pass,
                                  EvalPredicate(*pred, in.row(base + i)));
        }
        if (pass) out.AppendUnchecked(in.row(base + i));
      }
    }
    return out;
  }

  // Morsel-driven scan: fixed-size morsels pulled from the pool's shared
  // cursor. Each morsel packs, evaluates and filters its own row range
  // (PackColumn interning goes through the ValuePool mutex, which is the
  // only shared mutable state). Survivor lists are concatenated in
  // morsel order, so output order and the first surfaced error match the
  // serial path exactly; once one morsel fails, later morsels are
  // skipped (their survivors would be discarded anyway).
  const size_t n_morsels = (n_rows + kRowBatch - 1) / kRowBatch;
  std::vector<std::vector<size_t>> pass_rows(n_morsels);
  std::vector<Status> morsel_status(n_morsels, Status::OK());
  std::atomic<bool> failed{false};
  ParallelFor(threads, n_morsels, [&](size_t m) {
    if (failed.load(std::memory_order_relaxed)) return;
    const size_t base = m * kRowBatch;
    const size_t n = std::min(kRowBatch, n_rows - base);
    std::vector<std::vector<PackedValue>> packed(
        cols.size(), std::vector<PackedValue>(n));
    std::vector<ExprInput> inputs(cols.size());
    for (size_t s = 0; s < cols.size(); ++s) {
      PackColumn(in, cols[s], base, n, packed[s].data());
      inputs[s] = {packed[s].data(), false};
    }
    std::vector<PackedValue> results(n);
    std::vector<size_t> fallback;
    ExprBatchEvaluator eval(&*prog);
    eval.Eval(inputs.data(), 0, n, results.data(), &fallback);
    std::vector<size_t>& survivors = pass_rows[m];
    size_t fi = 0;
    for (size_t i = 0; i < n; ++i) {
      bool need_interp = fi < fallback.size() && fallback[fi] == i;
      if (need_interp) ++fi;
      bool pass = false;
      if (!need_interp) pass = PackedPredicate(results[i], &need_interp);
      if (need_interp) {
        Result<bool> r = EvalPredicate(*pred, in.row(base + i));
        if (!r.ok()) {
          morsel_status[m] = r.status();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        pass = *r;
      }
      if (pass) survivors.push_back(base + i);
    }
  });
  size_t total = 0;
  for (size_t m = 0; m < n_morsels; ++m) {
    MAYBMS_RETURN_IF_ERROR(morsel_status[m]);
    total += pass_rows[m].size();
  }
  out.Reserve(total);
  for (const std::vector<size_t>& survivors : pass_rows) {
    for (size_t i : survivors) out.AppendUnchecked(in.row(i));
  }
  return out;
}

Result<Relation> ExecNode(const PlanPtr& plan, const Catalog& catalog,
                          const ExecOptions& opts) {
  switch (plan->kind()) {
    case PlanKind::kScan: {
      MAYBMS_ASSIGN_OR_RETURN(const Relation* rel, catalog.Get(plan->relation()));
      return *rel;
    }
    case PlanKind::kSelect:
      return ExecSelect(*plan, catalog, opts);
    case PlanKind::kProject:
      return ExecProject(*plan, catalog, opts);
    case PlanKind::kProduct:
    case PlanKind::kJoin:
      return ExecProductOrJoin(*plan, catalog, opts);
    case PlanKind::kUnion:
      return ExecUnion(*plan, catalog, opts);
    case PlanKind::kDifference:
      return ExecDifference(*plan, catalog, opts);
    case PlanKind::kDistinct:
      return ExecDistinct(*plan, catalog, opts);
    case PlanKind::kSort:
      return ExecSort(*plan, catalog, opts);
    case PlanKind::kLimit: {
      MAYBMS_ASSIGN_OR_RETURN(Relation in,
                              ExecNode(plan->input(), catalog, opts));
      Relation out("", in.schema());
      for (size_t i = 0; i < std::min(plan->limit(), in.NumRows()); ++i) {
        out.AppendUnchecked(in.row(i));
      }
      return out;
    }
    case PlanKind::kAggregate:
      return ExecAggregate(*plan, catalog, opts);
  }
  return Status::Internal("unreachable plan kind");
}

}  // namespace

Result<Relation> Execute(const PlanPtr& plan, const Catalog& catalog,
                         const ExecOptions& opts) {
  return ExecNode(plan, catalog, opts);
}

Result<Schema> OutputSchema(const PlanPtr& plan, const Catalog& catalog) {
  // Execute on an empty shell of the catalog would be wasteful; instead we
  // execute the plan with all base relations emptied. Plans are cheap on
  // empty inputs, and this reuses exactly the schema logic of execution.
  Catalog empty;
  // Collect scans.
  std::vector<const Plan*> stack = {plan.get()};
  while (!stack.empty()) {
    const Plan* p = stack.back();
    stack.pop_back();
    if (p->kind() == PlanKind::kScan) {
      MAYBMS_ASSIGN_OR_RETURN(const Relation* rel, catalog.Get(p->relation()));
      Relation shell(rel->name(), rel->schema());
      empty.Put(std::move(shell));
    }
    for (const auto& c : p->children()) stack.push_back(c.get());
  }
  MAYBMS_ASSIGN_OR_RETURN(Relation r, ExecNode(plan, empty, ExecOptions{}));
  return r.schema();
}

}  // namespace maybms
