#include "ra/executor.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"

namespace maybms {

namespace {

// Local alias; shared implementation lives in ra/expr.cc.
ValueType InferType(const Expr& e, const Schema& in) {
  return InferExprType(e, in);
}

// Detects a conjunction of equality predicates between left-side and
// right-side columns of a join; returns pairs of (left idx, right idx in
// right schema) and the residual predicate (bound against the concat
// schema) or nullptr.
struct EquiJoinKeys {
  std::vector<size_t> left_cols;
  std::vector<size_t> right_cols;  // indexes into the *right* schema
  ExprPtr residual;                // bound against concatenated schema
};

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind() == ExprKind::kAnd) {
    SplitConjuncts(e->left(), out);
    SplitConjuncts(e->right(), out);
  } else {
    out->push_back(e);
  }
}

EquiJoinKeys AnalyzeJoinPredicate(const ExprPtr& bound_pred,
                                  size_t left_arity) {
  EquiJoinKeys keys;
  if (!bound_pred) return keys;
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(bound_pred, &conjuncts);
  std::vector<ExprPtr> residuals;
  for (const auto& c : conjuncts) {
    if (c->kind() == ExprKind::kCompare &&
        c->compare_op() == CompareOp::kEq &&
        c->left()->kind() == ExprKind::kColumn &&
        c->right()->kind() == ExprKind::kColumn) {
      size_t a = c->left()->column_index();
      size_t b = c->right()->column_index();
      if (a < left_arity && b >= left_arity) {
        keys.left_cols.push_back(a);
        keys.right_cols.push_back(b - left_arity);
        continue;
      }
      if (b < left_arity && a >= left_arity) {
        keys.left_cols.push_back(b);
        keys.right_cols.push_back(a - left_arity);
        continue;
      }
    }
    residuals.push_back(c);
  }
  if (!residuals.empty()) {
    ExprPtr acc = residuals[0];
    for (size_t i = 1; i < residuals.size(); ++i) {
      acc = Expr::And(acc, residuals[i]);
    }
    keys.residual = acc;
  }
  return keys;
}

Result<Relation> ExecSelect(const Plan& plan, const Catalog& catalog);

Result<Relation> ExecNode(const PlanPtr& plan, const Catalog& catalog);

Result<Relation> ExecProject(const Plan& plan, const Catalog& catalog) {
  MAYBMS_ASSIGN_OR_RETURN(Relation in, ExecNode(plan.input(), catalog));
  std::vector<ExprPtr> bound;
  Schema out_schema;
  for (const auto& item : plan.project_items()) {
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr b, item.expr->BindAgainst(in.schema()));
    ValueType t = InferType(*b, in.schema());
    std::string name = item.name;
    int k = 2;
    while (out_schema.IndexOf(name)) name = item.name + "_" + std::to_string(k++);
    MAYBMS_RETURN_IF_ERROR(out_schema.Add({name, t}));
    bound.push_back(std::move(b));
  }
  Relation out("", out_schema);
  out.Reserve(in.NumRows());
  for (const auto& row : in.rows()) {
    Tuple t;
    t.reserve(bound.size());
    for (const auto& e : bound) {
      MAYBMS_ASSIGN_OR_RETURN(Value v, e->Eval(row));
      t.push_back(std::move(v));
    }
    out.AppendUnchecked(std::move(t));
  }
  return out;
}

Result<Relation> ExecProductOrJoin(const Plan& plan, const Catalog& catalog) {
  MAYBMS_ASSIGN_OR_RETURN(Relation l, ExecNode(plan.left(), catalog));
  MAYBMS_ASSIGN_OR_RETURN(Relation r, ExecNode(plan.right(), catalog));
  Schema out_schema = Schema::Concat(
      l.schema(), r.schema(), r.name().empty() ? "r" : r.name());
  Relation out("", out_schema);

  ExprPtr bound_pred;
  if (plan.kind() == PlanKind::kJoin && plan.predicate()) {
    MAYBMS_ASSIGN_OR_RETURN(bound_pred,
                            plan.predicate()->BindAgainst(out_schema));
  }

  EquiJoinKeys keys = AnalyzeJoinPredicate(bound_pred, l.schema().size());
  if (!keys.left_cols.empty()) {
    // Hash join on the equality keys.
    std::unordered_map<size_t, std::vector<size_t>> table;
    table.reserve(r.NumRows() * 2);
    for (size_t j = 0; j < r.NumRows(); ++j) {
      size_t h = 0;
      for (size_t k : keys.right_cols) HashCombine(&h, r.row(j)[k].Hash());
      table[h].push_back(j);
    }
    for (size_t i = 0; i < l.NumRows(); ++i) {
      size_t h = 0;
      for (size_t k : keys.left_cols) HashCombine(&h, l.row(i)[k].Hash());
      auto it = table.find(h);
      if (it == table.end()) continue;
      for (size_t j : it->second) {
        bool match = true;
        for (size_t k = 0; k < keys.left_cols.size(); ++k) {
          const Value& a = l.row(i)[keys.left_cols[k]];
          const Value& b = r.row(j)[keys.right_cols[k]];
          if (a.is_null() || b.is_null() || !(a == b)) {
            match = false;
            break;
          }
        }
        if (!match) continue;
        Tuple t = l.row(i);
        t.insert(t.end(), r.row(j).begin(), r.row(j).end());
        if (keys.residual) {
          MAYBMS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*keys.residual, t));
          if (!pass) continue;
        }
        out.AppendUnchecked(std::move(t));
      }
    }
    return out;
  }

  // Nested-loop product with optional predicate.
  for (size_t i = 0; i < l.NumRows(); ++i) {
    for (size_t j = 0; j < r.NumRows(); ++j) {
      Tuple t = l.row(i);
      t.insert(t.end(), r.row(j).begin(), r.row(j).end());
      if (bound_pred) {
        MAYBMS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*bound_pred, t));
        if (!pass) continue;
      }
      out.AppendUnchecked(std::move(t));
    }
  }
  return out;
}

Result<Relation> ExecUnion(const Plan& plan, const Catalog& catalog) {
  MAYBMS_ASSIGN_OR_RETURN(Relation l, ExecNode(plan.left(), catalog));
  MAYBMS_ASSIGN_OR_RETURN(Relation r, ExecNode(plan.right(), catalog));
  if (l.schema().size() != r.schema().size()) {
    return Status::InvalidArgument(
        StrFormat("UNION arity mismatch: %zu vs %zu", l.schema().size(),
                  r.schema().size()));
  }
  Relation out("", l.schema());
  out.Reserve(l.NumRows() + r.NumRows());
  for (const auto& row : l.rows()) out.AppendUnchecked(row);
  for (const auto& row : r.rows()) out.AppendUnchecked(row);
  return out;
}

Result<Relation> ExecDifference(const Plan& plan, const Catalog& catalog) {
  MAYBMS_ASSIGN_OR_RETURN(Relation l, ExecNode(plan.left(), catalog));
  MAYBMS_ASSIGN_OR_RETURN(Relation r, ExecNode(plan.right(), catalog));
  if (l.schema().size() != r.schema().size()) {
    return Status::InvalidArgument(
        StrFormat("EXCEPT arity mismatch: %zu vs %zu", l.schema().size(),
                  r.schema().size()));
  }
  // Anti-join semantics (SQL EXCEPT): a left row survives iff no equal
  // right row exists; left multiplicity is preserved. This matches the
  // lifted Difference evaluated per world.
  std::unordered_map<size_t, std::vector<Tuple>> right_set;
  for (const auto& row : r.rows()) {
    auto& bucket = right_set[TupleHash(row)];
    bool found = false;
    for (const auto& t : bucket) {
      if (TupleCompare(t, row) == 0) {
        found = true;
        break;
      }
    }
    if (!found) bucket.push_back(row);
  }
  Relation out("", l.schema());
  for (const auto& row : l.rows()) {
    auto it = right_set.find(TupleHash(row));
    bool matched = false;
    if (it != right_set.end()) {
      for (const auto& t : it->second) {
        if (TupleCompare(t, row) == 0) {
          matched = true;
          break;
        }
      }
    }
    if (!matched) out.AppendUnchecked(row);
  }
  return out;
}

Result<Relation> ExecDistinct(const Plan& plan, const Catalog& catalog) {
  MAYBMS_ASSIGN_OR_RETURN(Relation in, ExecNode(plan.input(), catalog));
  Relation out("", in.schema());
  std::unordered_map<size_t, std::vector<size_t>> seen;
  for (const auto& row : in.rows()) {
    size_t h = TupleHash(row);
    auto& bucket = seen[h];
    bool dup = false;
    for (size_t idx : bucket) {
      if (TupleCompare(out.row(idx), row) == 0) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      bucket.push_back(out.NumRows());
      out.AppendUnchecked(row);
    }
  }
  return out;
}

Result<Relation> ExecSort(const Plan& plan, const Catalog& catalog) {
  MAYBMS_ASSIGN_OR_RETURN(Relation in, ExecNode(plan.input(), catalog));
  std::vector<size_t> idxs;
  for (const auto& name : plan.sort_columns()) {
    MAYBMS_ASSIGN_OR_RETURN(size_t i, in.schema().Resolve(name));
    idxs.push_back(i);
  }
  const auto& desc = plan.sort_descending();
  Relation out = in;
  std::vector<Tuple> rows = in.rows();
  std::stable_sort(rows.begin(), rows.end(),
                   [&](const Tuple& a, const Tuple& b) {
                     for (size_t k = 0; k < idxs.size(); ++k) {
                       int c = a[idxs[k]].Compare(b[idxs[k]]);
                       if (k < desc.size() && desc[k]) c = -c;
                       if (c != 0) return c < 0;
                     }
                     return false;
                   });
  Relation sorted("", in.schema());
  for (auto& row : rows) sorted.AppendUnchecked(std::move(row));
  return sorted;
}

Result<Relation> ExecAggregate(const Plan& plan, const Catalog& catalog) {
  MAYBMS_ASSIGN_OR_RETURN(Relation in, ExecNode(plan.input(), catalog));
  std::vector<size_t> group_idx;
  Schema out_schema;
  for (const auto& name : plan.group_by()) {
    MAYBMS_ASSIGN_OR_RETURN(size_t i, in.schema().Resolve(name));
    group_idx.push_back(i);
    MAYBMS_RETURN_IF_ERROR(out_schema.Add(in.schema().attr(i)));
  }
  std::vector<ExprPtr> bound_args;
  for (const auto& agg : plan.aggregates()) {
    ExprPtr b;
    if (agg.arg) {
      MAYBMS_ASSIGN_OR_RETURN(b, agg.arg->BindAgainst(in.schema()));
    }
    bound_args.push_back(b);
    ValueType t = ValueType::kDouble;
    if (agg.func == AggFunc::kCount) t = ValueType::kInt;
    else if (b && (agg.func == AggFunc::kMin || agg.func == AggFunc::kMax)) {
      t = InferType(*b, in.schema());
    } else if (b && agg.func == AggFunc::kSum &&
               InferType(*b, in.schema()) == ValueType::kInt) {
      t = ValueType::kInt;
    }
    MAYBMS_RETURN_IF_ERROR(out_schema.Add({agg.name, t}));
  }

  struct GroupState {
    Tuple key;
    std::vector<double> sums;
    std::vector<int64_t> int_sums;
    std::vector<bool> int_exact;
    std::vector<Value> mins, maxs;
    std::vector<int64_t> counts;  // per-agg non-null count
    int64_t rows = 0;
  };
  std::unordered_map<size_t, std::vector<GroupState>> groups;
  std::vector<const GroupState*> order;  // first-seen order

  size_t n_aggs = plan.aggregates().size();
  for (const auto& row : in.rows()) {
    Tuple key;
    key.reserve(group_idx.size());
    for (size_t i : group_idx) key.push_back(row[i]);
    size_t h = TupleHash(key);
    auto& bucket = groups[h];
    GroupState* g = nullptr;
    for (auto& cand : bucket) {
      if (TupleCompare(cand.key, key) == 0) {
        g = &cand;
        break;
      }
    }
    if (!g) {
      bucket.push_back(GroupState{});
      g = &bucket.back();
      g->key = std::move(key);
      g->sums.assign(n_aggs, 0.0);
      g->int_sums.assign(n_aggs, 0);
      g->int_exact.assign(n_aggs, true);
      g->mins.assign(n_aggs, Value::Null());
      g->maxs.assign(n_aggs, Value::Null());
      g->counts.assign(n_aggs, 0);
      order.push_back(g);
    }
    g->rows += 1;
    for (size_t a = 0; a < n_aggs; ++a) {
      const auto& spec = plan.aggregates()[a];
      if (!bound_args[a]) {  // COUNT(*)
        g->counts[a] += 1;
        continue;
      }
      MAYBMS_ASSIGN_OR_RETURN(Value v, bound_args[a]->Eval(row));
      if (v.is_null() || v.is_bottom()) continue;
      g->counts[a] += 1;
      switch (spec.func) {
        case AggFunc::kCount:
          break;
        case AggFunc::kSum:
        case AggFunc::kAvg:
          if (!v.is_numeric()) {
            return Status::TypeMismatch("SUM/AVG over non-numeric value");
          }
          g->sums[a] += v.NumericValue();
          if (v.is_int()) g->int_sums[a] += v.as_int();
          else g->int_exact[a] = false;
          break;
        case AggFunc::kMin:
          if (g->mins[a].is_null() || v.Compare(g->mins[a]) < 0) g->mins[a] = v;
          break;
        case AggFunc::kMax:
          if (g->maxs[a].is_null() || v.Compare(g->maxs[a]) > 0) g->maxs[a] = v;
          break;
      }
    }
  }

  Relation out("", out_schema);
  // Global aggregate over empty input still yields one row.
  if (order.empty() && group_idx.empty()) {
    Tuple t;
    for (size_t a = 0; a < n_aggs; ++a) {
      if (plan.aggregates()[a].func == AggFunc::kCount) {
        t.push_back(Value::Int(0));
      } else {
        t.push_back(Value::Null());
      }
    }
    out.AppendUnchecked(std::move(t));
    return out;
  }
  for (const GroupState* g : order) {
    Tuple t = g->key;
    for (size_t a = 0; a < n_aggs; ++a) {
      const auto& spec = plan.aggregates()[a];
      switch (spec.func) {
        case AggFunc::kCount:
          t.push_back(Value::Int(g->counts[a]));
          break;
        case AggFunc::kSum:
          if (g->counts[a] == 0) t.push_back(Value::Null());
          else if (g->int_exact[a]) t.push_back(Value::Int(g->int_sums[a]));
          else t.push_back(Value::Double(g->sums[a]));
          break;
        case AggFunc::kAvg:
          if (g->counts[a] == 0) t.push_back(Value::Null());
          else t.push_back(
              Value::Double(g->sums[a] / static_cast<double>(g->counts[a])));
          break;
        case AggFunc::kMin:
          t.push_back(g->mins[a]);
          break;
        case AggFunc::kMax:
          t.push_back(g->maxs[a]);
          break;
      }
    }
    out.AppendUnchecked(std::move(t));
  }
  return out;
}

Result<Relation> ExecSelect(const Plan& plan, const Catalog& catalog) {
  MAYBMS_ASSIGN_OR_RETURN(Relation in, ExecNode(plan.input(), catalog));
  MAYBMS_ASSIGN_OR_RETURN(ExprPtr pred,
                          plan.predicate()->BindAgainst(in.schema()));
  Relation out("", in.schema());
  for (const auto& row : in.rows()) {
    MAYBMS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*pred, row));
    if (pass) out.AppendUnchecked(row);
  }
  return out;
}

Result<Relation> ExecNode(const PlanPtr& plan, const Catalog& catalog) {
  switch (plan->kind()) {
    case PlanKind::kScan: {
      MAYBMS_ASSIGN_OR_RETURN(const Relation* rel, catalog.Get(plan->relation()));
      return *rel;
    }
    case PlanKind::kSelect:
      return ExecSelect(*plan, catalog);
    case PlanKind::kProject:
      return ExecProject(*plan, catalog);
    case PlanKind::kProduct:
    case PlanKind::kJoin:
      return ExecProductOrJoin(*plan, catalog);
    case PlanKind::kUnion:
      return ExecUnion(*plan, catalog);
    case PlanKind::kDifference:
      return ExecDifference(*plan, catalog);
    case PlanKind::kDistinct:
      return ExecDistinct(*plan, catalog);
    case PlanKind::kSort:
      return ExecSort(*plan, catalog);
    case PlanKind::kLimit: {
      MAYBMS_ASSIGN_OR_RETURN(Relation in, ExecNode(plan->input(), catalog));
      Relation out("", in.schema());
      for (size_t i = 0; i < std::min(plan->limit(), in.NumRows()); ++i) {
        out.AppendUnchecked(in.row(i));
      }
      return out;
    }
    case PlanKind::kAggregate:
      return ExecAggregate(*plan, catalog);
  }
  return Status::Internal("unreachable plan kind");
}

}  // namespace

Result<Relation> Execute(const PlanPtr& plan, const Catalog& catalog) {
  return ExecNode(plan, catalog);
}

Result<Schema> OutputSchema(const PlanPtr& plan, const Catalog& catalog) {
  // Execute on an empty shell of the catalog would be wasteful; instead we
  // execute the plan with all base relations emptied. Plans are cheap on
  // empty inputs, and this reuses exactly the schema logic of execution.
  Catalog empty;
  // Collect scans.
  std::vector<const Plan*> stack = {plan.get()};
  while (!stack.empty()) {
    const Plan* p = stack.back();
    stack.pop_back();
    if (p->kind() == PlanKind::kScan) {
      MAYBMS_ASSIGN_OR_RETURN(const Relation* rel, catalog.Get(p->relation()));
      Relation shell(rel->name(), rel->schema());
      empty.Put(std::move(shell));
    }
    for (const auto& c : p->children()) stack.push_back(c.get());
  }
  MAYBMS_ASSIGN_OR_RETURN(Relation r, ExecNode(plan, empty));
  return r.schema();
}

}  // namespace maybms
