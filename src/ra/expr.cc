#include "ra/expr.h"

#include "common/string_util.h"

namespace maybms {

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string_view ArithOpToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

ExprPtr Expr::Const(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kConst;
  e->value_ = std::move(v);
  return e;
}

ExprPtr Expr::Column(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumn;
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::ColumnIdx(size_t idx, std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumn;
  e->name_ = std::move(name);
  e->col_idx_ = idx;
  e->bound_ = true;
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kCompare;
  e->cmp_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kArith;
  e->arith_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::And(ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kAnd;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Or(ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kOr;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Not(ExprPtr child) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kNot;
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::IsNull(ExprPtr child, bool negated) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kIsNull;
  e->negated_ = negated;
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::In(ExprPtr child, std::vector<Value> set) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kIn;
  e->in_set_ = std::move(set);
  e->children_ = {std::move(child)};
  return e;
}

Result<ExprPtr> Expr::BindAgainst(const Schema& schema) const {
  switch (kind_) {
    case ExprKind::kConst:
      return Const(value_);
    case ExprKind::kColumn: {
      if (bound_) {
        if (col_idx_ >= schema.size()) {
          return Status::OutOfRange(
              StrFormat("column index %zu out of range for schema %s",
                        col_idx_, schema.ToString().c_str()));
        }
        return ColumnIdx(col_idx_, name_);
      }
      MAYBMS_ASSIGN_OR_RETURN(size_t idx, schema.Resolve(name_));
      return ColumnIdx(idx, name_);
    }
    default: {
      std::vector<ExprPtr> bound_children;
      bound_children.reserve(children_.size());
      for (const auto& c : children_) {
        MAYBMS_ASSIGN_OR_RETURN(ExprPtr b, c->BindAgainst(schema));
        bound_children.push_back(std::move(b));
      }
      auto e = std::shared_ptr<Expr>(new Expr(*this));
      e->children_ = std::move(bound_children);
      return ExprPtr(e);
    }
  }
}

namespace {

// Three-valued comparison. Returns Bool or Null.
Result<Value> EvalCompare(CompareOp op, const Value& l, const Value& r) {
  if (l.is_bottom() || r.is_bottom()) return Value::Bottom();
  if (l.is_null() || r.is_null()) return Value::Null();
  // Comparable kinds: both numeric, both string, both bool.
  bool comparable = (l.is_numeric() && r.is_numeric()) ||
                    (l.is_string() && r.is_string()) ||
                    (l.is_bool() && r.is_bool());
  if (!comparable) {
    return Status::TypeMismatch(StrFormat(
        "cannot compare %s with %s", l.ToString().c_str(),
        r.ToString().c_str()));
  }
  int c = l.Compare(r);
  bool result = false;
  switch (op) {
    case CompareOp::kEq:
      result = (c == 0);
      break;
    case CompareOp::kNe:
      result = (c != 0);
      break;
    case CompareOp::kLt:
      result = (c < 0);
      break;
    case CompareOp::kLe:
      result = (c <= 0);
      break;
    case CompareOp::kGt:
      result = (c > 0);
      break;
    case CompareOp::kGe:
      result = (c >= 0);
      break;
  }
  return Value::Bool(result);
}

Result<Value> EvalArith(ArithOp op, const Value& l, const Value& r) {
  if (l.is_bottom() || r.is_bottom()) return Value::Bottom();
  if (l.is_null() || r.is_null()) return Value::Null();
  if (!l.is_numeric() || !r.is_numeric()) {
    return Status::TypeMismatch(
        StrFormat("arithmetic needs numbers, got %s %s %s",
                  l.ToString().c_str(),
                  std::string(ArithOpToString(op)).c_str(),
                  r.ToString().c_str()));
  }
  if (l.is_int() && r.is_int()) {
    // Two's-complement wrap-around (no signed-overflow UB); the compiled
    // evaluator (ra/expr_compile.cc) implements the same semantics.
    int64_t a = l.as_int(), b = r.as_int();
    auto wrap = [](uint64_t u) { return Value::Int(static_cast<int64_t>(u)); };
    switch (op) {
      case ArithOp::kAdd:
        return wrap(static_cast<uint64_t>(a) + static_cast<uint64_t>(b));
      case ArithOp::kSub:
        return wrap(static_cast<uint64_t>(a) - static_cast<uint64_t>(b));
      case ArithOp::kMul:
        return wrap(static_cast<uint64_t>(a) * static_cast<uint64_t>(b));
      case ArithOp::kDiv:
        // SQL: division by zero -> NULL; INT64_MIN / -1 overflows and is
        // folded into the same NULL.
        if (b == 0 || (a == INT64_MIN && b == -1)) return Value::Null();
        return Value::Int(a / b);
    }
  }
  double a = l.NumericValue(), b = r.NumericValue();
  switch (op) {
    case ArithOp::kAdd:
      return Value::Double(a + b);
    case ArithOp::kSub:
      return Value::Double(a - b);
    case ArithOp::kMul:
      return Value::Double(a * b);
    case ArithOp::kDiv:
      if (b == 0.0) return Value::Null();
      return Value::Double(a / b);
  }
  return Status::Internal("unreachable arith");
}

}  // namespace

Result<Value> Expr::Eval(const Tuple& tuple) const {
  switch (kind_) {
    case ExprKind::kConst:
      return value_;
    case ExprKind::kColumn: {
      if (!bound_) {
        return Status::Internal("evaluating unbound column " + name_);
      }
      if (col_idx_ >= tuple.size()) {
        return Status::OutOfRange(
            StrFormat("column index %zu >= tuple arity %zu", col_idx_,
                      tuple.size()));
      }
      return tuple[col_idx_];
    }
    case ExprKind::kCompare: {
      MAYBMS_ASSIGN_OR_RETURN(Value l, children_[0]->Eval(tuple));
      MAYBMS_ASSIGN_OR_RETURN(Value r, children_[1]->Eval(tuple));
      return EvalCompare(cmp_, l, r);
    }
    case ExprKind::kArith: {
      MAYBMS_ASSIGN_OR_RETURN(Value l, children_[0]->Eval(tuple));
      MAYBMS_ASSIGN_OR_RETURN(Value r, children_[1]->Eval(tuple));
      return EvalArith(arith_, l, r);
    }
    case ExprKind::kAnd: {
      MAYBMS_ASSIGN_OR_RETURN(Value l, children_[0]->Eval(tuple));
      if (l.is_bottom()) return Value::Bottom();
      if (l.is_bool() && !l.as_bool()) return Value::Bool(false);
      MAYBMS_ASSIGN_OR_RETURN(Value r, children_[1]->Eval(tuple));
      if (r.is_bottom()) return Value::Bottom();
      if (r.is_bool() && !r.as_bool()) return Value::Bool(false);
      if (l.is_null() || r.is_null()) return Value::Null();
      if (!l.is_bool() || !r.is_bool()) {
        return Status::TypeMismatch("AND over non-boolean");
      }
      return Value::Bool(true);
    }
    case ExprKind::kOr: {
      MAYBMS_ASSIGN_OR_RETURN(Value l, children_[0]->Eval(tuple));
      if (l.is_bottom()) return Value::Bottom();
      if (l.is_bool() && l.as_bool()) return Value::Bool(true);
      MAYBMS_ASSIGN_OR_RETURN(Value r, children_[1]->Eval(tuple));
      if (r.is_bottom()) return Value::Bottom();
      if (r.is_bool() && r.as_bool()) return Value::Bool(true);
      if (l.is_null() || r.is_null()) return Value::Null();
      if (!l.is_bool() || !r.is_bool()) {
        return Status::TypeMismatch("OR over non-boolean");
      }
      return Value::Bool(false);
    }
    case ExprKind::kNot: {
      MAYBMS_ASSIGN_OR_RETURN(Value v, children_[0]->Eval(tuple));
      if (v.is_bottom()) return Value::Bottom();
      if (v.is_null()) return Value::Null();
      if (!v.is_bool()) return Status::TypeMismatch("NOT over non-boolean");
      return Value::Bool(!v.as_bool());
    }
    case ExprKind::kIsNull: {
      MAYBMS_ASSIGN_OR_RETURN(Value v, children_[0]->Eval(tuple));
      if (v.is_bottom()) return Value::Bottom();
      bool is_null = v.is_null();
      return Value::Bool(negated_ ? !is_null : is_null);
    }
    case ExprKind::kIn: {
      MAYBMS_ASSIGN_OR_RETURN(Value v, children_[0]->Eval(tuple));
      if (v.is_bottom()) return Value::Bottom();
      if (v.is_null()) return Value::Null();
      for (const auto& candidate : in_set_) {
        if (!candidate.is_null() && v == candidate) return Value::Bool(true);
      }
      return Value::Bool(false);
    }
  }
  return Status::Internal("unreachable expr kind");
}

void Expr::CollectColumns(std::vector<size_t>* out) const {
  if (kind_ == ExprKind::kColumn) {
    if (bound_) out->push_back(col_idx_);
    return;
  }
  for (const auto& c : children_) c->CollectColumns(out);
}

void Expr::CollectColumnNames(std::vector<std::string>* out) const {
  if (kind_ == ExprKind::kColumn) {
    out->push_back(name_);
    return;
  }
  for (const auto& c : children_) c->CollectColumnNames(out);
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kConst:
      return value_.ToString();
    case ExprKind::kColumn:
      return name_.empty() ? StrFormat("$%zu", col_idx_) : name_;
    case ExprKind::kCompare:
      return "(" + children_[0]->ToString() + " " +
             std::string(CompareOpToString(cmp_)) + " " +
             children_[1]->ToString() + ")";
    case ExprKind::kArith:
      return "(" + children_[0]->ToString() + " " +
             std::string(ArithOpToString(arith_)) + " " +
             children_[1]->ToString() + ")";
    case ExprKind::kAnd:
      return "(" + children_[0]->ToString() + " AND " +
             children_[1]->ToString() + ")";
    case ExprKind::kOr:
      return "(" + children_[0]->ToString() + " OR " +
             children_[1]->ToString() + ")";
    case ExprKind::kNot:
      return "(NOT " + children_[0]->ToString() + ")";
    case ExprKind::kIsNull:
      return "(" + children_[0]->ToString() +
             (negated_ ? " IS NOT NULL)" : " IS NULL)");
    case ExprKind::kIn: {
      std::string out = "(" + children_[0]->ToString() + " IN (";
      for (size_t i = 0; i < in_set_.size(); ++i) {
        if (i) out += ", ";
        out += in_set_[i].ToString();
      }
      return out + "))";
    }
  }
  return "?";
}

ValueType InferExprType(const Expr& e, const Schema& in) {
  switch (e.kind()) {
    case ExprKind::kConst: {
      const Value& v = e.const_value();
      if (v.is_bool()) return ValueType::kBool;
      if (v.is_int()) return ValueType::kInt;
      if (v.is_double()) return ValueType::kDouble;
      return ValueType::kString;
    }
    case ExprKind::kColumn:
      if (e.column_index() < in.size()) return in.attr(e.column_index()).type;
      return ValueType::kString;
    case ExprKind::kArith: {
      ValueType l = InferExprType(*e.left(), in);
      ValueType r = InferExprType(*e.right(), in);
      if (l == ValueType::kDouble || r == ValueType::kDouble) {
        return ValueType::kDouble;
      }
      return ValueType::kInt;
    }
    default:
      return ValueType::kBool;
  }
}

Result<bool> EvalPredicate(const Expr& pred, const Tuple& tuple) {
  MAYBMS_ASSIGN_OR_RETURN(Value v, pred.Eval(tuple));
  if (v.is_bool()) return v.as_bool();
  if (v.is_null() || v.is_bottom()) return false;
  return Status::TypeMismatch("predicate did not evaluate to boolean: " +
                              pred.ToString());
}

}  // namespace maybms
