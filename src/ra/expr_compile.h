// Compiled, vectorized expression evaluation.
//
// CompiledExpr lowers a bound Expr tree into a flat register program whose
// instructions evaluate directly on PackedValue operands: string equality
// is an interned-id compare, no Value is materialized, and there is no
// per-node shared_ptr traversal. ExprBatchEvaluator runs a program over a
// whole column span (e.g. one component column range, or a packed chunk of
// relation rows) in one pass, chunk by chunk, keeping the working set of
// registers cache-resident.
//
// Semantics contract: for every row, the compiled result equals
// Expr::Eval on the same inputs — except that rows on which evaluation
// would raise an error (type mismatches), or on which the straight-line
// program cannot reproduce the interpreter's short-circuit behavior, are
// reported in `needs_fallback` and MUST be re-evaluated by the caller
// through Expr::Eval. This makes the interpreter the single source of
// truth: the compiler covering a node is a pure optimization, never a
// semantic fork. Compile() itself returns nullopt for trees it does not
// cover (unbound columns, oversized programs, future node kinds), in
// which case callers keep the interpreted path entirely.
#ifndef MAYBMS_RA_EXPR_COMPILE_H_
#define MAYBMS_RA_EXPR_COMPILE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "ra/expr.h"
#include "storage/packed_value.h"

namespace maybms {

/// Execution knobs shared by the conventional executor and the lifted
/// operators. Off switches exist so benchmarks (and bug hunts) can compare
/// compiled and interpreted evaluation on identical inputs.
struct ExecOptions {
  /// Lower predicates and computed projections to CompiledExpr programs;
  /// falls back to Expr::Eval per row when compilation is not possible.
  bool compile_expressions = true;
  /// Minimum rows in one batch before evaluation is sharded over the
  /// shared ThreadPool (only batches with pre-packed columnar inputs are
  /// sharded; packing itself stays on the caller's thread).
  size_t parallel_row_threshold = 8192;
  /// Threads for sharded batches: 0 = DefaultNumThreads().
  size_t num_threads = 0;
};

/// Instruction opcodes of the compiled form. Each instruction writes the
/// register with its own index (SSA-style: one register per node).
enum class ExprOpCode : uint8_t {
  kLoadConst,  ///< reg[dst] = consts[imm]           (broadcast)
  kLoadCol,    ///< reg[dst] = input column imm
  kCompare,    ///< aux = CompareOp; reg[a] vs reg[b]
  kArith,      ///< aux = ArithOp;   reg[a] op reg[b]
  kAnd,        ///< three-valued AND of reg[a], reg[b]
  kOr,         ///< three-valued OR of reg[a], reg[b]
  kNot,        ///< three-valued NOT of reg[a]
  kIsNull,     ///< aux = negated;   reg[a] IS [NOT] NULL
  kIn,         ///< reg[a] IN in_sets[imm]
};

struct ExprInstr {
  ExprOpCode op;
  uint8_t aux = 0;    // CompareOp / ArithOp / negated flag
  uint16_t a = 0;     // left operand register
  uint16_t b = 0;     // right operand register
  uint32_t imm = 0;   // const index / input slot / IN-set index
};

/// One input column of a batch: `data[i]` for row i, or `data[0]` for
/// every row when `broadcast` is set (a certain cell of the enclosing
/// tuple, packed once).
struct ExprInput {
  const PackedValue* data = nullptr;
  bool broadcast = false;
};

/// A bound expression lowered to a flat typed register program.
class CompiledExpr {
 public:
  /// Lowers `e`; nullopt when the tree is not compilable (unbound column,
  /// register overflow, unknown node kind).
  static std::optional<CompiledExpr> Compile(const Expr& e);

  /// Distinct bound column indexes read by the program, ascending. The
  /// caller supplies one ExprInput per entry, in this order.
  const std::vector<size_t>& columns() const { return cols_; }

  size_t num_instrs() const { return instrs_.size(); }

 private:
  friend class ExprBatchEvaluator;
  friend class ExprCompiler;
  CompiledExpr() = default;

  std::vector<ExprInstr> instrs_;
  std::vector<PackedValue> consts_;
  std::vector<std::vector<PackedValue>> in_sets_;  // non-null candidates
  std::vector<size_t> cols_;
};

/// Maps a packed expression result to SQL WHERE semantics (the packed
/// counterpart of EvalPredicate): Bool(true) passes; false, NULL and ⊥
/// reject. Any other kind is an interpreter-visible type error — the
/// caller must re-evaluate the row through EvalPredicate.
inline bool PackedPredicate(const PackedValue& v, bool* needs_fallback) {
  if (v.is_bool()) return v.as_bool();
  if (!v.is_null() && !v.is_bottom()) *needs_fallback = true;
  return false;
}

/// Reusable evaluation state (registers) for one program. Not
/// thread-safe; parallel shards use one evaluator each.
class ExprBatchEvaluator {
 public:
  explicit ExprBatchEvaluator(const CompiledExpr* prog) : prog_(prog) {}

  /// Evaluates rows [begin, end). `inputs` has prog->columns().size()
  /// entries; non-broadcast inputs are indexed by the absolute row.
  /// Results land in out[i - begin]. Rows whose evaluation tripped an
  /// error condition are appended (ascending, absolute) to
  /// `needs_fallback` and hold NULL in `out`; the caller re-evaluates
  /// them through Expr::Eval for authoritative results/errors.
  void Eval(const ExprInput* inputs, size_t begin, size_t end,
            PackedValue* out, std::vector<size_t>* needs_fallback);

  const CompiledExpr* program() const { return prog_; }

  /// Rows per internal chunk; registers occupy
  /// num_instrs * kChunk * sizeof(PackedValue) bytes.
  static constexpr size_t kChunk = 256;

 private:
  const CompiledExpr* prog_;
  std::vector<PackedValue> regs_;  // [instr][lane], kChunk lanes per instr
  std::vector<uint8_t> err_;       // per-lane error flags
};

/// Rows per morsel of the parallel batch paths: fixed-size work units
/// pulled from the pool's shared cursor instead of equal static ranges,
/// so stragglers re-balance onto idle workers.
constexpr size_t kMorselRows = 8 * ExprBatchEvaluator::kChunk;

/// Evaluates `prog` over rows [0, n) into out[0..n), splitting the batch
/// into kMorselRows-sized morsels over the shared ThreadPool when it
/// reaches opts.parallel_row_threshold (inputs must then be pre-packed —
/// no interning happens during evaluation, so morsels are
/// data-parallel). Flagged rows are appended to `needs_fallback` in
/// ascending order.
void EvalBatchAuto(const CompiledExpr& prog, const ExprInput* inputs,
                   size_t n, PackedValue* out,
                   std::vector<size_t>* needs_fallback,
                   const ExecOptions& opts);

}  // namespace maybms

#endif  // MAYBMS_RA_EXPR_COMPILE_H_
