#include "ra/expr_compile.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "common/parallel.h"

namespace maybms {

namespace {

// Wrapping int64 ops: two's-complement semantics without signed-overflow
// UB. The interpreter uses the same helpers so both paths agree bit for
// bit on the whole input range.
inline int64_t WrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}
inline int64_t WrapSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) -
                              static_cast<uint64_t>(b));
}
inline int64_t WrapMul(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) *
                              static_cast<uint64_t>(b));
}

}  // namespace

// Named (rather than file-local) so CompiledExpr can befriend it.
class ExprCompiler {
 public:
  std::optional<CompiledExpr> Run(const Expr& root) {
    // Input slots first: distinct bound columns, ascending, so consumers
    // can bind component columns / packed chunks positionally.
    std::vector<size_t> cols;
    root.CollectColumns(&cols);
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    out_.cols_ = cols;
    for (size_t s = 0; s < cols.size(); ++s) slot_of_[cols[s]] = s;
    if (!Lower(root)) return std::nullopt;
    return std::move(out_);
  }

 private:
  // Emits instructions for `e` and returns the register holding its
  // value; nullopt when the node is not compilable.
  std::optional<uint16_t> Lower(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::kConst: {
        ExprInstr ins{ExprOpCode::kLoadConst, 0, 0, 0,
                      static_cast<uint32_t>(out_.consts_.size())};
        out_.consts_.push_back(PackedValue::FromValue(e.const_value()));
        return Emit(ins);
      }
      case ExprKind::kColumn: {
        if (!e.is_bound()) return std::nullopt;
        auto it = slot_of_.find(e.column_index());
        if (it == slot_of_.end()) return std::nullopt;
        return Emit({ExprOpCode::kLoadCol, 0, 0, 0,
                     static_cast<uint32_t>(it->second)});
      }
      case ExprKind::kCompare: {
        auto l = Lower(*e.left()), r = l ? Lower(*e.right()) : std::nullopt;
        if (!r) return std::nullopt;
        return Emit({ExprOpCode::kCompare,
                     static_cast<uint8_t>(e.compare_op()), *l, *r, 0});
      }
      case ExprKind::kArith: {
        auto l = Lower(*e.left()), r = l ? Lower(*e.right()) : std::nullopt;
        if (!r) return std::nullopt;
        return Emit({ExprOpCode::kArith, static_cast<uint8_t>(e.arith_op()),
                     *l, *r, 0});
      }
      case ExprKind::kAnd:
      case ExprKind::kOr: {
        auto l = Lower(*e.left()), r = l ? Lower(*e.right()) : std::nullopt;
        if (!r) return std::nullopt;
        return Emit({e.kind() == ExprKind::kAnd ? ExprOpCode::kAnd
                                                : ExprOpCode::kOr,
                     0, *l, *r, 0});
      }
      case ExprKind::kNot: {
        auto c = Lower(*e.left());
        if (!c) return std::nullopt;
        return Emit({ExprOpCode::kNot, 0, *c, 0, 0});
      }
      case ExprKind::kIsNull: {
        auto c = Lower(*e.left());
        if (!c) return std::nullopt;
        return Emit({ExprOpCode::kIsNull,
                     static_cast<uint8_t>(e.is_null_negated() ? 1 : 0), *c,
                     0, 0});
      }
      case ExprKind::kIn: {
        auto c = Lower(*e.left());
        if (!c) return std::nullopt;
        // NULL candidates can never match (the interpreter skips them);
        // drop them at compile time.
        std::vector<PackedValue> set;
        set.reserve(e.in_set().size());
        for (const Value& v : e.in_set()) {
          if (!v.is_null()) set.push_back(PackedValue::FromValue(v));
        }
        ExprInstr ins{ExprOpCode::kIn, 0, *c, 0,
                      static_cast<uint32_t>(out_.in_sets_.size())};
        out_.in_sets_.push_back(std::move(set));
        return Emit(ins);
      }
    }
    return std::nullopt;  // unknown future node kind -> interpreter
  }

  std::optional<uint16_t> Emit(ExprInstr ins) {
    if (out_.instrs_.size() >= UINT16_MAX) return std::nullopt;
    out_.instrs_.push_back(ins);
    return static_cast<uint16_t>(out_.instrs_.size() - 1);
  }

  CompiledExpr out_;
  std::unordered_map<size_t, size_t> slot_of_;
};

std::optional<CompiledExpr> CompiledExpr::Compile(const Expr& e) {
  return ExprCompiler().Run(e);
}

void ExprBatchEvaluator::Eval(const ExprInput* inputs, size_t begin,
                              size_t end, PackedValue* out,
                              std::vector<size_t>* needs_fallback) {
  const auto& instrs = prog_->instrs_;
  if (instrs.empty() || begin >= end) return;
  regs_.resize(instrs.size() * kChunk);
  err_.resize(kChunk);
  for (size_t c0 = begin; c0 < end; c0 += kChunk) {
    const size_t n = std::min(kChunk, end - c0);
    std::memset(err_.data(), 0, n);
    bool any_err = false;
    for (size_t i = 0; i < instrs.size(); ++i) {
      const ExprInstr& ins = instrs[i];
      PackedValue* dst = &regs_[i * kChunk];
      const PackedValue* A = &regs_[ins.a * kChunk];
      const PackedValue* B = &regs_[ins.b * kChunk];
      switch (ins.op) {
        case ExprOpCode::kLoadConst: {
          const PackedValue v = prog_->consts_[ins.imm];
          for (size_t k = 0; k < n; ++k) dst[k] = v;
          break;
        }
        case ExprOpCode::kLoadCol: {
          const ExprInput& in = inputs[ins.imm];
          if (in.broadcast) {
            const PackedValue v = in.data[0];
            for (size_t k = 0; k < n; ++k) dst[k] = v;
          } else {
            std::memcpy(dst, in.data + c0, n * sizeof(PackedValue));
          }
          break;
        }
        case ExprOpCode::kCompare: {
          const CompareOp op = static_cast<CompareOp>(ins.aux);
          for (size_t k = 0; k < n; ++k) {
            const PackedValue& l = A[k];
            const PackedValue& r = B[k];
            if (l.is_bottom() || r.is_bottom()) {
              dst[k] = PackedValue::Bottom();
              continue;
            }
            if (l.is_null() || r.is_null()) {
              dst[k] = PackedValue::Null();
              continue;
            }
            const bool comparable = (l.is_numeric() && r.is_numeric()) ||
                                    (l.is_string() && r.is_string()) ||
                                    (l.is_bool() && r.is_bool());
            if (!comparable) {
              err_[k] = 1;
              any_err = true;
              dst[k] = PackedValue::Null();
              continue;
            }
            bool res;
            switch (op) {
              case CompareOp::kEq:
                res = (l == r);
                break;
              case CompareOp::kNe:
                res = !(l == r);
                break;
              default: {
                const int c = l.Compare(r);
                res = (op == CompareOp::kLt)   ? c < 0
                      : (op == CompareOp::kLe) ? c <= 0
                      : (op == CompareOp::kGt) ? c > 0
                                               : c >= 0;
                break;
              }
            }
            dst[k] = PackedValue::Bool(res);
          }
          break;
        }
        case ExprOpCode::kArith: {
          const ArithOp op = static_cast<ArithOp>(ins.aux);
          for (size_t k = 0; k < n; ++k) {
            const PackedValue& l = A[k];
            const PackedValue& r = B[k];
            if (l.is_bottom() || r.is_bottom()) {
              dst[k] = PackedValue::Bottom();
              continue;
            }
            if (l.is_null() || r.is_null()) {
              dst[k] = PackedValue::Null();
              continue;
            }
            if (!l.is_numeric() || !r.is_numeric()) {
              err_[k] = 1;
              any_err = true;
              dst[k] = PackedValue::Null();
              continue;
            }
            if (l.is_int() && r.is_int()) {
              const int64_t a = l.as_int(), b = r.as_int();
              switch (op) {
                case ArithOp::kAdd:
                  dst[k] = PackedValue::Int(WrapAdd(a, b));
                  break;
                case ArithOp::kSub:
                  dst[k] = PackedValue::Int(WrapSub(a, b));
                  break;
                case ArithOp::kMul:
                  dst[k] = PackedValue::Int(WrapMul(a, b));
                  break;
                case ArithOp::kDiv:
                  // b == 0 -> NULL (SQL); INT64_MIN / -1 overflows and is
                  // folded into the same NULL, matching the interpreter.
                  dst[k] = (b == 0 || (a == INT64_MIN && b == -1))
                               ? PackedValue::Null()
                               : PackedValue::Int(a / b);
                  break;
              }
              continue;
            }
            const double a = l.NumericValue(), b = r.NumericValue();
            switch (op) {
              case ArithOp::kAdd:
                dst[k] = PackedValue::Double(a + b);
                break;
              case ArithOp::kSub:
                dst[k] = PackedValue::Double(a - b);
                break;
              case ArithOp::kMul:
                dst[k] = PackedValue::Double(a * b);
                break;
              case ArithOp::kDiv:
                dst[k] = (b == 0.0) ? PackedValue::Null()
                                    : PackedValue::Double(a / b);
                break;
            }
          }
          break;
        }
        case ExprOpCode::kAnd: {
          // Matches the interpreter's short-circuit outcomes when neither
          // operand errored; lanes where an operand already errored are
          // re-run through the interpreter anyway, which restores the
          // exact lazy-evaluation semantics.
          for (size_t k = 0; k < n; ++k) {
            const PackedValue& l = A[k];
            const PackedValue& r = B[k];
            if (l.is_bottom()) {
              dst[k] = PackedValue::Bottom();
            } else if (l.is_bool() && !l.as_bool()) {
              dst[k] = PackedValue::Bool(false);
            } else if (r.is_bottom()) {
              dst[k] = PackedValue::Bottom();
            } else if (r.is_bool() && !r.as_bool()) {
              dst[k] = PackedValue::Bool(false);
            } else if (l.is_null() || r.is_null()) {
              dst[k] = PackedValue::Null();
            } else if (!l.is_bool() || !r.is_bool()) {
              err_[k] = 1;
              any_err = true;
              dst[k] = PackedValue::Null();
            } else {
              dst[k] = PackedValue::Bool(true);
            }
          }
          break;
        }
        case ExprOpCode::kOr: {
          for (size_t k = 0; k < n; ++k) {
            const PackedValue& l = A[k];
            const PackedValue& r = B[k];
            if (l.is_bottom()) {
              dst[k] = PackedValue::Bottom();
            } else if (l.is_bool() && l.as_bool()) {
              dst[k] = PackedValue::Bool(true);
            } else if (r.is_bottom()) {
              dst[k] = PackedValue::Bottom();
            } else if (r.is_bool() && r.as_bool()) {
              dst[k] = PackedValue::Bool(true);
            } else if (l.is_null() || r.is_null()) {
              dst[k] = PackedValue::Null();
            } else if (!l.is_bool() || !r.is_bool()) {
              err_[k] = 1;
              any_err = true;
              dst[k] = PackedValue::Null();
            } else {
              dst[k] = PackedValue::Bool(false);
            }
          }
          break;
        }
        case ExprOpCode::kNot: {
          for (size_t k = 0; k < n; ++k) {
            const PackedValue& v = A[k];
            if (v.is_bottom()) {
              dst[k] = PackedValue::Bottom();
            } else if (v.is_null()) {
              dst[k] = PackedValue::Null();
            } else if (!v.is_bool()) {
              err_[k] = 1;
              any_err = true;
              dst[k] = PackedValue::Null();
            } else {
              dst[k] = PackedValue::Bool(!v.as_bool());
            }
          }
          break;
        }
        case ExprOpCode::kIsNull: {
          const bool negated = ins.aux != 0;
          for (size_t k = 0; k < n; ++k) {
            const PackedValue& v = A[k];
            if (v.is_bottom()) {
              dst[k] = PackedValue::Bottom();
            } else {
              dst[k] = PackedValue::Bool(negated ? !v.is_null()
                                                 : v.is_null());
            }
          }
          break;
        }
        case ExprOpCode::kIn: {
          const std::vector<PackedValue>& set = prog_->in_sets_[ins.imm];
          for (size_t k = 0; k < n; ++k) {
            const PackedValue& v = A[k];
            if (v.is_bottom()) {
              dst[k] = PackedValue::Bottom();
              continue;
            }
            if (v.is_null()) {
              dst[k] = PackedValue::Null();
              continue;
            }
            bool found = false;
            for (const PackedValue& cand : set) {
              if (v == cand) {
                found = true;
                break;
              }
            }
            dst[k] = PackedValue::Bool(found);
          }
          break;
        }
      }
    }
    const PackedValue* result = &regs_[(instrs.size() - 1) * kChunk];
    PackedValue* chunk_out = out + (c0 - begin);
    std::memcpy(chunk_out, result, n * sizeof(PackedValue));
    if (any_err) {
      // Error lanes must never surface a downstream-computed value (an
      // instruction after the error ran on the placeholder NULL), even
      // for callers that don't collect fallback rows.
      for (size_t k = 0; k < n; ++k) {
        if (err_[k]) {
          chunk_out[k] = PackedValue::Null();
          if (needs_fallback) needs_fallback->push_back(c0 + k);
        }
      }
    }
  }
}

void EvalBatchAuto(const CompiledExpr& prog, const ExprInput* inputs,
                   size_t n, PackedValue* out,
                   std::vector<size_t>* needs_fallback,
                   const ExecOptions& opts) {
  if (n == 0) return;
  const size_t threads =
      opts.num_threads ? opts.num_threads : DefaultNumThreads();
  if (n < opts.parallel_row_threshold || threads <= 1) {
    ExprBatchEvaluator eval(&prog);
    eval.Eval(inputs, 0, n, out, needs_fallback);
    return;
  }
  // Morsel-driven: fixed-size morsels claimed from the pool's shared
  // atomic cursor (ParallelFor hands out indices dynamically), so a
  // skewed or stalled morsel never idles the other workers the way
  // equal static ranges would. Morsels are contiguous and claimed in
  // ascending order, so concatenating per-morsel fallback lists in
  // morsel order keeps the result ascending.
  const size_t n_morsels = (n + kMorselRows - 1) / kMorselRows;
  std::vector<std::vector<size_t>> morsel_fallback(n_morsels);
  ParallelFor(threads, n_morsels, [&](size_t m) {
    const size_t begin = m * kMorselRows, end = std::min(n, begin + kMorselRows);
    ExprBatchEvaluator eval(&prog);
    eval.Eval(inputs, begin, end, out + begin, &morsel_fallback[m]);
  });
  if (needs_fallback) {
    for (auto& f : morsel_fallback) {
      needs_fallback->insert(needs_fallback->end(), f.begin(), f.end());
    }
  }
}

}  // namespace maybms
