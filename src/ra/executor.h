// Materializing executor for the conventional engine: evaluates a logical
// plan against a Catalog of certain relations. This is the single-world
// baseline of the paper's experiment 3 and the per-world evaluator of the
// enumeration oracle.
#ifndef MAYBMS_RA_EXECUTOR_H_
#define MAYBMS_RA_EXECUTOR_H_

#include "common/result.h"
#include "ra/expr_compile.h"
#include "ra/plan.h"
#include "storage/catalog.h"

namespace maybms {

/// Evaluates `plan` over `catalog`, materializing every intermediate.
/// Equi-joins use a hash table; other joins fall back to nested loops.
/// Predicates and computed projections run as compiled vectorized
/// programs over packed row chunks when `opts.compile_expressions` is set
/// (the default), with per-row interpreter fallback where the program
/// cannot decide — results are identical in both modes by construction.
Result<Relation> Execute(const PlanPtr& plan, const Catalog& catalog,
                         const ExecOptions& opts = {});

/// Computes the output schema of `plan` without executing it.
Result<Schema> OutputSchema(const PlanPtr& plan, const Catalog& catalog);

}  // namespace maybms

#endif  // MAYBMS_RA_EXECUTOR_H_
