#include "sql/parser.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"
#include "sql/token.h"

namespace maybms {
namespace sql {

namespace {

class Parser {
 public:
  Parser(std::string input, std::vector<Token> tokens)
      : input_(std::move(input)), tokens_(std::move(tokens)) {}

  Result<Statement> ParseOne() {
    const size_t begin = Cur().offset;
    MAYBMS_ASSIGN_OR_RETURN(Statement s, ParseStatementInternal());
    s.source_text = SliceSource(begin, Cur().offset);
    Accept(";");
    if (!At(TokenKind::kEnd)) {
      return Error("trailing input after statement");
    }
    return s;
  }

  Result<std::vector<Statement>> ParseAll() {
    std::vector<Statement> out;
    while (!At(TokenKind::kEnd)) {
      if (Accept(";")) continue;
      const size_t begin = Cur().offset;
      MAYBMS_ASSIGN_OR_RETURN(Statement s, ParseStatementInternal());
      s.source_text = SliceSource(begin, Cur().offset);
      out.push_back(std::move(s));
      if (!Accept(";") && !At(TokenKind::kEnd)) {
        return Error("expected ';' between statements");
      }
    }
    return out;
  }

 private:
  // --- token helpers -----------------------------------------------------
  const Token& Cur() const { return tokens_[pos_]; }
  bool At(TokenKind k) const { return Cur().kind == k; }
  bool AtKeyword(const char* kw) const { return Cur().IsKeyword(kw); }
  bool AtSymbol(const char* s) const { return Cur().IsSymbol(s); }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool Accept(const char* sym) {
    if (AtSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptKeyword(const char* kw) {
    if (AtKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(const char* sym) {
    if (!Accept(sym)) {
      return Error(std::string("expected '") + sym + "'");
    }
    return Status::OK();
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Error(std::string("expected ") + kw);
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdent(const char* what) {
    if (!At(TokenKind::kIdent)) {
      return Error(std::string("expected ") + what);
    }
    std::string name = Cur().text;
    Advance();
    return name;
  }
  Result<double> ExpectNumber(const char* what) {
    if (At(TokenKind::kFloat)) {
      double v = Cur().float_value;
      Advance();
      return v;
    }
    if (At(TokenKind::kInt)) {
      double v = static_cast<double>(Cur().int_value);
      Advance();
      return v;
    }
    return Error(std::string("expected ") + what);
  }
  /// The input text between byte offsets, trimmed — the statement's own
  /// SQL, captured for the write-ahead log.
  std::string SliceSource(size_t begin, size_t end) const {
    end = std::min(end, input_.size());
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(input_[begin]))) {
      ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(input_[end - 1]))) {
      --end;
    }
    return input_.substr(begin, end - begin);
  }

  // Returns a Status that converts implicitly into any Result<T>.
  Status Error(const std::string& msg) const {
    return Status::ParseError(
        StrFormat("%s at offset %zu (near '%s')", msg.c_str(), Cur().offset,
                  Cur().text.c_str()));
  }

  // --- statements --------------------------------------------------------
  Result<Statement> ParseStatementInternal() {
    if (AtKeyword("create")) return ParseCreate();
    if (AtKeyword("insert")) return ParseInsert();
    if (AtKeyword("drop")) return ParseDrop();
    if (AtKeyword("explain")) return ParseExplain();
    if (AtKeyword("show")) return ParseShow();
    if (AtKeyword("enforce")) return ParseEnforce();
    if (AtKeyword("repair")) return ParseRepair();
    if (AtKeyword("save")) return ParseSaveDb();
    if (AtKeyword("load")) return ParseLoadDb();
    if (AtKeyword("set")) return ParseSet();
    if (AtKeyword("delete")) return ParseDelete();
    if (AtKeyword("checkpoint")) {
      Advance();
      Statement s;
      s.kind = Statement::Kind::kCheckpoint;
      s.checkpoint = CheckpointStmt{};
      return s;
    }
    if (AtKeyword("select") || AtKeyword("possible") || AtKeyword("certain")) {
      Statement s;
      s.kind = Statement::Kind::kSelect;
      MAYBMS_ASSIGN_OR_RETURN(s.select, ParseSelect());
      return s;
    }
    return Error("expected a statement");
  }

  Result<std::string> ExpectPathLiteral() {
    if (!At(TokenKind::kString)) {
      return Error("expected a quoted file path");
    }
    std::string path = Cur().text;
    Advance();
    if (path.empty()) return Error("file path must not be empty");
    return path;
  }

  Result<Statement> ParseSaveDb() {
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("save"));
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("database"));
    Statement s;
    s.kind = Statement::Kind::kSaveDb;
    SaveDbStmt stmt;
    MAYBMS_ASSIGN_OR_RETURN(stmt.path, ExpectPathLiteral());
    if (AcceptKeyword("format")) {
      if (AcceptKeyword("text")) {
        stmt.binary = false;
      } else if (AcceptKeyword("binary")) {
        stmt.binary = true;
      } else {
        return Error("expected TEXT or BINARY after FORMAT");
      }
    }
    s.save_db = std::move(stmt);
    return s;
  }

  Result<Statement> ParseLoadDb() {
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("load"));
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("database"));
    Statement s;
    s.kind = Statement::Kind::kLoadDb;
    LoadDbStmt stmt;
    MAYBMS_ASSIGN_OR_RETURN(stmt.path, ExpectPathLiteral());
    stmt.mapped = AcceptKeyword("mapped");
    s.load_db = std::move(stmt);
    return s;
  }

  Result<Statement> ParseRepair() {
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("repair"));
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("key"));
    Statement s;
    s.kind = Statement::Kind::kRepair;
    RepairStmt stmt;
    bool paren = Accept("(");
    do {
      MAYBMS_ASSIGN_OR_RETURN(std::string col, ExpectIdent("key column"));
      stmt.key.push_back(std::move(col));
    } while (Accept(","));
    if (paren) MAYBMS_RETURN_IF_ERROR(Expect(")"));
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("in"));
    MAYBMS_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    if (AcceptKeyword("weight")) {
      MAYBMS_RETURN_IF_ERROR(ExpectKeyword("by"));
      MAYBMS_ASSIGN_OR_RETURN(stmt.weight, ExpectIdent("weight column"));
    }
    s.repair = std::move(stmt);
    return s;
  }

  Result<Statement> ParseCreate() {
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("create"));
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("table"));
    CreateTableStmt stmt;
    MAYBMS_ASSIGN_OR_RETURN(stmt.name, ExpectIdent("table name"));
    MAYBMS_RETURN_IF_ERROR(Expect("("));
    do {
      MAYBMS_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
      MAYBMS_ASSIGN_OR_RETURN(std::string type, ExpectIdent("column type"));
      ValueType vt;
      if (EqualsIgnoreCase(type, "int") || EqualsIgnoreCase(type, "integer") ||
          EqualsIgnoreCase(type, "bigint")) {
        vt = ValueType::kInt;
      } else if (EqualsIgnoreCase(type, "double") ||
                 EqualsIgnoreCase(type, "float") ||
                 EqualsIgnoreCase(type, "real")) {
        vt = ValueType::kDouble;
      } else if (EqualsIgnoreCase(type, "string") ||
                 EqualsIgnoreCase(type, "text") ||
                 EqualsIgnoreCase(type, "varchar")) {
        vt = ValueType::kString;
      } else if (EqualsIgnoreCase(type, "bool") ||
                 EqualsIgnoreCase(type, "boolean")) {
        vt = ValueType::kBool;
      } else {
        return Error("unknown type " + type);
      }
      MAYBMS_RETURN_IF_ERROR(stmt.schema.Add({col, vt}));
    } while (Accept(","));
    MAYBMS_RETURN_IF_ERROR(Expect(")"));
    Statement s;
    s.kind = Statement::Kind::kCreateTable;
    s.create_table = std::move(stmt);
    return s;
  }

  Result<Value> ParseLiteral() {
    if (At(TokenKind::kInt)) {
      Value v = Value::Int(Cur().int_value);
      Advance();
      return v;
    }
    if (At(TokenKind::kFloat)) {
      Value v = Value::Double(Cur().float_value);
      Advance();
      return v;
    }
    if (At(TokenKind::kString)) {
      Value v = Value::String(Cur().text);
      Advance();
      return v;
    }
    if (AcceptKeyword("null")) return Value::Null();
    if (AcceptKeyword("true")) return Value::Bool(true);
    if (AcceptKeyword("false")) return Value::Bool(false);
    if (Accept("-")) {
      if (At(TokenKind::kInt)) {
        Value v = Value::Int(-Cur().int_value);
        Advance();
        return v;
      }
      if (At(TokenKind::kFloat)) {
        Value v = Value::Double(-Cur().float_value);
        Advance();
        return v;
      }
      return Error("expected number after '-'");
    }
    return Error("expected literal");
  }

  Result<InsertCell> ParseInsertCell() {
    InsertCell cell;
    if (Accept("{")) {
      cell.is_orset = true;
      do {
        MAYBMS_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        cell.alternatives.push_back(std::move(v));
        if (Accept(":")) {
          if (At(TokenKind::kFloat)) {
            cell.probs.push_back(Cur().float_value);
            Advance();
          } else if (At(TokenKind::kInt)) {
            cell.probs.push_back(static_cast<double>(Cur().int_value));
            Advance();
          } else {
            return Error("expected probability after ':'");
          }
        }
      } while (Accept(","));
      MAYBMS_RETURN_IF_ERROR(Expect("}"));
      if (!cell.probs.empty() &&
          cell.probs.size() != cell.alternatives.size()) {
        return Error(
            "either all or none of the or-set alternatives may carry "
            "probabilities");
      }
      return cell;
    }
    MAYBMS_ASSIGN_OR_RETURN(cell.value, ParseLiteral());
    return cell;
  }

  Result<Statement> ParseInsert() {
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("insert"));
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("into"));
    InsertStmt stmt;
    MAYBMS_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("values"));
    do {
      MAYBMS_RETURN_IF_ERROR(Expect("("));
      std::vector<InsertCell> row;
      do {
        MAYBMS_ASSIGN_OR_RETURN(InsertCell c, ParseInsertCell());
        row.push_back(std::move(c));
      } while (Accept(","));
      MAYBMS_RETURN_IF_ERROR(Expect(")"));
      stmt.rows.push_back(std::move(row));
    } while (Accept(","));
    Statement s;
    s.kind = Statement::Kind::kInsert;
    s.insert = std::move(stmt);
    return s;
  }

  Result<Statement> ParseDrop() {
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("drop"));
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("table"));
    Statement s;
    s.kind = Statement::Kind::kDropTable;
    DropTableStmt stmt;
    MAYBMS_ASSIGN_OR_RETURN(stmt.name, ExpectIdent("table name"));
    s.drop_table = std::move(stmt);
    return s;
  }

  Result<Statement> ParseExplain() {
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("explain"));
    Statement s;
    s.kind = Statement::Kind::kExplain;
    ExplainStmt stmt;
    MAYBMS_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
    s.explain = std::move(stmt);
    return s;
  }

  Result<Statement> ParseShow() {
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("show"));
    Statement s;
    s.kind = Statement::Kind::kShow;
    ShowStmt stmt;
    if (AcceptKeyword("tables")) {
      stmt.what = ShowStmt::What::kTables;
    } else if (AcceptKeyword("worlds")) {
      stmt.what = ShowStmt::What::kWorlds;
      if (At(TokenKind::kInt)) {
        stmt.max_worlds = static_cast<size_t>(Cur().int_value);
        Advance();
      }
    } else if (AcceptKeyword("relation")) {
      stmt.what = ShowStmt::What::kRelation;
      MAYBMS_ASSIGN_OR_RETURN(stmt.relation, ExpectIdent("relation name"));
    } else if (AcceptKeyword("settings")) {
      stmt.what = ShowStmt::What::kSettings;
    } else {
      return Error("expected TABLES, WORLDS, RELATION or SETTINGS after SHOW");
    }
    s.show = std::move(stmt);
    return s;
  }

  Result<Statement> ParseSet() {
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("set"));
    Statement s;
    s.kind = Statement::Kind::kSet;
    SetStmt stmt;
    MAYBMS_ASSIGN_OR_RETURN(stmt.name, ExpectIdent("setting name"));
    MAYBMS_RETURN_IF_ERROR(Expect("="));
    MAYBMS_ASSIGN_OR_RETURN(stmt.value, ParseLiteral());
    s.set = std::move(stmt);
    return s;
  }

  Result<Statement> ParseDelete() {
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("delete"));
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("from"));
    Statement s;
    s.kind = Statement::Kind::kDelete;
    DeleteStmt stmt;
    MAYBMS_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("oldest"));
    if (!At(TokenKind::kInt) || Cur().int_value < 0) {
      return Error("expected a non-negative tuple count after OLDEST");
    }
    stmt.count = static_cast<size_t>(Cur().int_value);
    Advance();
    s.delete_stmt = std::move(stmt);
    return s;
  }

  Result<Statement> ParseEnforce() {
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("enforce"));
    Statement s;
    s.kind = Statement::Kind::kEnforce;
    EnforceStmt stmt;
    if (AcceptKeyword("check")) {
      stmt.kind = EnforceStmt::Kind::kCheck;
      MAYBMS_RETURN_IF_ERROR(Expect("("));
      MAYBMS_ASSIGN_OR_RETURN(stmt.check, ParseExpr());
      MAYBMS_RETURN_IF_ERROR(Expect(")"));
    } else if (AcceptKeyword("key")) {
      stmt.kind = EnforceStmt::Kind::kKey;
      MAYBMS_RETURN_IF_ERROR(Expect("("));
      do {
        MAYBMS_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column"));
        stmt.lhs.push_back(std::move(col));
      } while (Accept(","));
      MAYBMS_RETURN_IF_ERROR(Expect(")"));
    } else if (AcceptKeyword("fd")) {
      stmt.kind = EnforceStmt::Kind::kFd;
      do {
        MAYBMS_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column"));
        stmt.lhs.push_back(std::move(col));
      } while (Accept(","));
      MAYBMS_RETURN_IF_ERROR(Expect("->"));
      do {
        MAYBMS_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column"));
        stmt.rhs.push_back(std::move(col));
      } while (Accept(","));
    } else {
      return Error("expected CHECK, KEY or FD after ENFORCE");
    }
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("on"));
    MAYBMS_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    s.enforce = std::move(stmt);
    return s;
  }

  // --- SELECT ------------------------------------------------------------
  Result<SelectPtr> ParseSelect() {
    auto stmt = std::make_shared<SelectStmt>();
    if (AcceptKeyword("possible")) {
      stmt->mode = SelectMode::kPossible;
    } else if (AcceptKeyword("certain")) {
      stmt->mode = SelectMode::kCertain;
    }
    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("select"));
    if (AcceptKeyword("distinct")) stmt->distinct = true;

    do {
      SelectItem item;
      if (Accept("*")) {
        item.kind = SelectItem::Kind::kStar;
      } else if (AtKeyword("prob")) {
        Advance();
        MAYBMS_RETURN_IF_ERROR(Expect("("));
        MAYBMS_RETURN_IF_ERROR(Expect(")"));
        item.kind = SelectItem::Kind::kProb;
        item.alias = "prob";
      } else if (AtKeyword("ecount")) {
        Advance();
        MAYBMS_RETURN_IF_ERROR(Expect("("));
        MAYBMS_RETURN_IF_ERROR(Expect(")"));
        item.kind = SelectItem::Kind::kEcount;
        item.alias = "ecount";
      } else if (AtKeyword("esum")) {
        Advance();
        MAYBMS_RETURN_IF_ERROR(Expect("("));
        MAYBMS_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column"));
        MAYBMS_RETURN_IF_ERROR(Expect(")"));
        item.kind = SelectItem::Kind::kEsum;
        item.expr = Expr::Column(col);
        item.alias = "esum";
      } else if (AtKeyword("approx")) {
        Advance();
        MAYBMS_RETURN_IF_ERROR(ExpectKeyword("conf"));
        MAYBMS_RETURN_IF_ERROR(Expect("("));
        MAYBMS_ASSIGN_OR_RETURN(item.approx_eps, ExpectNumber("epsilon"));
        if (Accept(",")) {
          MAYBMS_ASSIGN_OR_RETURN(item.approx_delta, ExpectNumber("delta"));
        }
        MAYBMS_RETURN_IF_ERROR(Expect(")"));
        item.kind = SelectItem::Kind::kApproxConf;
        item.alias = "conf";
      } else {
        MAYBMS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (item.expr->kind() == ExprKind::kColumn) {
          item.alias = item.expr->column_name();
        }
      }
      if (AcceptKeyword("as")) {
        MAYBMS_ASSIGN_OR_RETURN(item.alias, ExpectIdent("alias"));
      }
      if (item.alias.empty() && item.kind == SelectItem::Kind::kExpr) {
        item.alias = "expr" + std::to_string(stmt->items.size() + 1);
      }
      stmt->items.push_back(std::move(item));
    } while (Accept(","));

    MAYBMS_RETURN_IF_ERROR(ExpectKeyword("from"));
    do {
      TableRef ref;
      MAYBMS_ASSIGN_OR_RETURN(ref.table, ExpectIdent("table name"));
      if (AcceptKeyword("as")) {
        MAYBMS_ASSIGN_OR_RETURN(ref.alias, ExpectIdent("alias"));
      } else if (At(TokenKind::kIdent) && !AtKeyword("where") &&
                 !AtKeyword("order") && !AtKeyword("union") &&
                 !AtKeyword("except")) {
        ref.alias = Cur().text;
        Advance();
      }
      stmt->from.push_back(std::move(ref));
    } while (Accept(","));

    if (AcceptKeyword("where")) {
      MAYBMS_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (AcceptKeyword("order")) {
      MAYBMS_RETURN_IF_ERROR(ExpectKeyword("by"));
      do {
        OrderItem o;
        MAYBMS_ASSIGN_OR_RETURN(o.column, ExpectIdent("order column"));
        if (AcceptKeyword("desc")) {
          o.descending = true;
        } else {
          AcceptKeyword("asc");
        }
        stmt->order_by.push_back(std::move(o));
      } while (Accept(","));
    }
    if (AcceptKeyword("union")) {
      stmt->compound = SelectStmt::Compound::kUnion;
      MAYBMS_ASSIGN_OR_RETURN(stmt->rhs, ParseSelect());
    } else if (AcceptKeyword("except")) {
      stmt->compound = SelectStmt::Compound::kExcept;
      MAYBMS_ASSIGN_OR_RETURN(stmt->rhs, ParseSelect());
    }
    return stmt;
  }

  // --- expressions ---------------------------------------------------------
  // precedence: OR < AND < NOT < comparison/IN/IS < add < mul < primary
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr l, ParseAnd());
    while (AcceptKeyword("or")) {
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr r, ParseAnd());
      l = Expr::Or(std::move(l), std::move(r));
    }
    return l;
  }

  Result<ExprPtr> ParseAnd() {
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr l, ParseNot());
    while (AcceptKeyword("and")) {
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr r, ParseNot());
      l = Expr::And(std::move(l), std::move(r));
    }
    return l;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("not")) {
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return Expr::Not(std::move(e));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr l, ParseAdditive());
    if (AtSymbol("=") || AtSymbol("<>") || AtSymbol("!=") || AtSymbol("<") ||
        AtSymbol("<=") || AtSymbol(">") || AtSymbol(">=")) {
      std::string op = Cur().text;
      Advance();
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr r, ParseAdditive());
      CompareOp cmp = CompareOp::kEq;
      if (op == "=") cmp = CompareOp::kEq;
      else if (op == "<>" || op == "!=") cmp = CompareOp::kNe;
      else if (op == "<") cmp = CompareOp::kLt;
      else if (op == "<=") cmp = CompareOp::kLe;
      else if (op == ">") cmp = CompareOp::kGt;
      else if (op == ">=") cmp = CompareOp::kGe;
      return Expr::Compare(cmp, std::move(l), std::move(r));
    }
    if (AtKeyword("is")) {
      Advance();
      bool negated = AcceptKeyword("not");
      MAYBMS_RETURN_IF_ERROR(ExpectKeyword("null"));
      return Expr::IsNull(std::move(l), negated);
    }
    if (AtKeyword("in")) {
      Advance();
      MAYBMS_RETURN_IF_ERROR(Expect("("));
      std::vector<Value> set;
      do {
        MAYBMS_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        set.push_back(std::move(v));
      } while (Accept(","));
      MAYBMS_RETURN_IF_ERROR(Expect(")"));
      return Expr::In(std::move(l), std::move(set));
    }
    if (AtKeyword("not")) {
      // l NOT IN (...)
      size_t save = pos_;
      Advance();
      if (AcceptKeyword("in")) {
        MAYBMS_RETURN_IF_ERROR(Expect("("));
        std::vector<Value> set;
        do {
          MAYBMS_ASSIGN_OR_RETURN(Value v, ParseLiteral());
          set.push_back(std::move(v));
        } while (Accept(","));
        MAYBMS_RETURN_IF_ERROR(Expect(")"));
        return Expr::Not(Expr::In(std::move(l), std::move(set)));
      }
      pos_ = save;
    }
    return l;
  }

  Result<ExprPtr> ParseAdditive() {
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr l, ParseMultiplicative());
    for (;;) {
      if (Accept("+")) {
        MAYBMS_ASSIGN_OR_RETURN(ExprPtr r, ParseMultiplicative());
        l = Expr::Arith(ArithOp::kAdd, std::move(l), std::move(r));
      } else if (Accept("-")) {
        MAYBMS_ASSIGN_OR_RETURN(ExprPtr r, ParseMultiplicative());
        l = Expr::Arith(ArithOp::kSub, std::move(l), std::move(r));
      } else {
        return l;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr l, ParsePrimary());
    for (;;) {
      if (Accept("*")) {
        MAYBMS_ASSIGN_OR_RETURN(ExprPtr r, ParsePrimary());
        l = Expr::Arith(ArithOp::kMul, std::move(l), std::move(r));
      } else if (Accept("/")) {
        MAYBMS_ASSIGN_OR_RETURN(ExprPtr r, ParsePrimary());
        l = Expr::Arith(ArithOp::kDiv, std::move(l), std::move(r));
      } else {
        return l;
      }
    }
  }

  Result<ExprPtr> ParsePrimary() {
    if (Accept("(")) {
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      MAYBMS_RETURN_IF_ERROR(Expect(")"));
      return e;
    }
    if (At(TokenKind::kInt) || At(TokenKind::kFloat) ||
        At(TokenKind::kString) || AtKeyword("null") || AtKeyword("true") ||
        AtKeyword("false") || AtSymbol("-")) {
      MAYBMS_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      return Expr::Const(std::move(v));
    }
    if (At(TokenKind::kIdent)) {
      std::string name = Cur().text;
      Advance();
      return Expr::Column(std::move(name));
    }
    return Error("expected expression");
  }

  std::string input_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(const std::string& input) {
  MAYBMS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser p(input, std::move(tokens));
  return p.ParseOne();
}

Result<std::vector<Statement>> ParseScript(const std::string& input) {
  MAYBMS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser p(input, std::move(tokens));
  return p.ParseAll();
}

}  // namespace sql
}  // namespace maybms
