// Abstract syntax of the MayBMS query language — SQL with constructs for
// incompleteness and probability:
//
//   CREATE TABLE r (a INT, b STRING);
//   INSERT INTO r VALUES (1, {'x': 0.4, 'y': 0.6});     -- or-set cell
//   SELECT b FROM r WHERE a = 1;                        -- world-set answer
//   SELECT b, PROB() FROM r WHERE a = 1;                -- confidence
//   POSSIBLE SELECT b FROM r;  CERTAIN SELECT b FROM r;
//   SELECT ECOUNT() FROM r WHERE a = 1;                 -- expected count
//   ENFORCE CHECK (a >= 0) ON r;  ENFORCE KEY (a) ON r;
//   ENFORCE FD city -> state ON r;
//   EXPLAIN SELECT ...;  SHOW TABLES;  SHOW WORLDS;  DROP TABLE r;
//   SET conf.num_threads = 4;  SHOW SETTINGS;
//   DELETE FROM r OLDEST 10;                            -- window retirement
#ifndef MAYBMS_SQL_AST_H_
#define MAYBMS_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ra/expr.h"
#include "storage/schema.h"

namespace maybms {
namespace sql {

/// One cell of an INSERT row: a certain literal or an or-set.
struct InsertCell {
  bool is_orset = false;
  Value value;  ///< when certain
  /// when or-set: alternatives and optional probabilities (empty probs =
  /// uniform)
  std::vector<Value> alternatives;
  std::vector<double> probs;
};

struct CreateTableStmt {
  std::string name;
  Schema schema;
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<InsertCell>> rows;
};

struct DropTableStmt {
  std::string name;
};

/// SELECT item: an expression, '*', PROB(), ECOUNT(), ESUM(col) or
/// APPROX CONF(ε[, δ]).
struct SelectItem {
  enum class Kind { kExpr, kStar, kProb, kEcount, kEsum, kApproxConf };
  Kind kind = Kind::kExpr;
  ExprPtr expr;  ///< also the argument of ESUM (a column reference)
  std::string alias;
  double approx_eps = 0.01;    ///< APPROX CONF interval half-width target
  double approx_delta = 0.05;  ///< APPROX CONF coverage failure probability
};

struct TableRef {
  std::string table;
  std::string alias;  ///< empty when none
};

struct OrderItem {
  std::string column;
  bool descending = false;
};

/// Answer mode of a SELECT.
enum class SelectMode {
  kWorldSet,  ///< plain SELECT: the answer is a world-set (a WSD)
  kPossible,  ///< POSSIBLE SELECT: tuples appearing in some world
  kCertain,   ///< CERTAIN SELECT: tuples appearing in every world
};

struct SelectStmt;
using SelectPtr = std::shared_ptr<SelectStmt>;

struct SelectStmt {
  SelectMode mode = SelectMode::kWorldSet;
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  ///< null when absent
  std::vector<OrderItem> order_by;
  /// Compound: this select (UNION|EXCEPT) rhs.
  enum class Compound { kNone, kUnion, kExcept };
  Compound compound = Compound::kNone;
  SelectPtr rhs;
};

struct ExplainStmt {
  SelectPtr select;
};

struct ShowStmt {
  enum class What { kTables, kWorlds, kRelation, kSettings };
  What what = What::kTables;
  std::string relation;   ///< for kRelation
  size_t max_worlds = 32; ///< for kWorlds
};

/// SET <knob> = <literal>: assigns one session setting (see the knob
/// registry in session.cc; SHOW SETTINGS lists all of them). Session-
/// local — never written to the WAL.
struct SetStmt {
  std::string name;
  Value value;
};

/// DELETE FROM r OLDEST n: retires the n oldest tuples of r (the
/// streaming window primitive), garbage-collecting components no
/// surviving tuple references. Lowers to a DeltaBatch evict op.
struct DeleteStmt {
  std::string table;
  size_t count = 0;
};

struct EnforceStmt {
  enum class Kind { kCheck, kKey, kFd };
  Kind kind = Kind::kCheck;
  std::string table;
  ExprPtr check;                  ///< kCheck
  std::vector<std::string> lhs;   ///< kKey attrs / kFd lhs
  std::vector<std::string> rhs;   ///< kFd rhs
};

/// REPAIR KEY (attrs) IN table [WEIGHT BY col]: one tuple per key group
/// survives per world, weighted — the construct that *introduces*
/// uncertainty from dirty certain data.
struct RepairStmt {
  std::string table;
  std::vector<std::string> key;
  std::string weight;  ///< empty = uniform
};

/// SAVE DATABASE '<path>' [FORMAT TEXT|BINARY]: snapshots the whole
/// world-set database. Defaults to the binary columnar format.
struct SaveDbStmt {
  std::string path;
  bool binary = true;
};

/// LOAD DATABASE '<path>' [MAPPED]: replaces the session's database with
/// the snapshot at `path` (format negotiated from the file header).
/// MAPPED memory-maps a v3 snapshot instead of decoding it: queries
/// materialize only the relation shards and components they touch.
struct LoadDbStmt {
  std::string path;
  bool mapped = false;
};

/// CHECKPOINT: rewrites the attached snapshot from current state and
/// resets its write-ahead log (also triggered automatically every
/// DurabilityOptions::auto_checkpoint_records logged statements).
struct CheckpointStmt {};

/// A parsed statement (exactly one member is set).
struct Statement {
  enum class Kind {
    kCreateTable,
    kInsert,
    kDropTable,
    kSelect,
    kExplain,
    kShow,
    kEnforce,
    kRepair,
    kSaveDb,
    kLoadDb,
    kCheckpoint,
    kSet,
    kDelete,
  };
  Kind kind = Kind::kSelect;
  std::optional<CreateTableStmt> create_table;
  std::optional<InsertStmt> insert;
  std::optional<DropTableStmt> drop_table;
  SelectPtr select;
  std::optional<ExplainStmt> explain;
  std::optional<ShowStmt> show;
  std::optional<EnforceStmt> enforce;
  std::optional<RepairStmt> repair;
  std::optional<SaveDbStmt> save_db;
  std::optional<LoadDbStmt> load_db;
  std::optional<CheckpointStmt> checkpoint;
  std::optional<SetStmt> set;
  std::optional<DeleteStmt> delete_stmt;
  /// The statement's own SQL text (trimmed; no trailing ';'), captured by
  /// the parser — what the session writes to the write-ahead log.
  std::string source_text;
};

}  // namespace sql
}  // namespace maybms

#endif  // MAYBMS_SQL_AST_H_
