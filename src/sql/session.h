// Session: the top-level entry point of the MayBMS engine. Owns a
// world-set database and executes query-language statements against it —
// the programmatic equivalent of the demo's console.
#ifndef MAYBMS_SQL_SESSION_H_
#define MAYBMS_SQL_SESSION_H_

#include <optional>
#include <string>
#include <vector>

#include <memory>

#include "common/result.h"
#include "core/approx_conf.h"
#include "core/confidence.h"
#include "core/delta.h"
#include "core/mapped_db.h"
#include "core/materialized_conf.h"
#include "core/serialize.h"
#include "core/wsd.h"
#include "ra/expr_compile.h"
#include "sql/ast.h"
#include "sql/optimizer.h"
#include "storage/io_env.h"
#include "storage/relation.h"
#include "storage/wal.h"

namespace maybms {
namespace sql {

/// Durability knobs. When the WAL is enabled, SAVE DATABASE (and LOAD
/// DATABASE of a saved snapshot) attaches the session to the snapshot
/// file: every subsequent mutating statement is appended to
/// `<snapshot>.wal` and fsynced *before* it is applied, so a crash loses
/// at most the statement that never acknowledged. LOAD DATABASE replays
/// any log newer than the snapshot; CHECKPOINT (or the automatic
/// threshold) rewrites the snapshot and resets the log.
struct DurabilityOptions {
  /// Master switch; when false SAVE/LOAD never attach a log.
  bool wal_enabled = true;
  /// Checkpoint automatically once the log holds this many statements
  /// (0 = only on explicit CHECKPOINT). A failed auto-checkpoint is a
  /// warning, not a statement failure — the log keeps the data safe.
  size_t auto_checkpoint_records = 256;
};

/// Every session knob behind one aggregate. SQL `SET <knob> = <value>`
/// and `SHOW SETTINGS` address leaves by dotted name ("conf.num_threads",
/// "durability.wal_enabled", ...); see the knob registry in session.cc.
/// Settings are session-local and never reach the WAL.
struct SessionOptions {
  /// Probabilistic-aggregate lowering (PROB/POSSIBLE/CERTAIN/ECOUNT/
  /// ESUM): enumeration budget, cluster factorization, thread count.
  ConfidenceOptions conf;
  /// Anytime approximate confidence behind APPROX CONF(ε, δ): sampling
  /// seed and per-cluster budgets (the ε/δ pair comes from the query).
  ApproxOptions approx;
  /// Lifted query evaluation: compiled vectorized expression programs
  /// vs the row-at-a-time interpreter, and batch parallelism.
  ExecOptions exec;
  /// Cost-based plan optimizer (per-rule switches and a master off
  /// switch); applied to every SELECT and EXPLAIN.
  OptimizerOptions optimizer;
  /// WAL attachment and auto-checkpoint threshold.
  DurabilityOptions durability;
  /// Maintain the session's content-keyed confidence cache
  /// (core/materialized_conf.h) across queries: re-issued CONF/APPROX
  /// CONF/ECOUNT/ESUM recompute only clusters whose components a delta
  /// dirtied and replay the cheap combine for the rest. Results are
  /// bit-identical with and without.
  bool materialize_conf = true;
  /// Entry capacity of that cache (takes effect on the next query after
  /// a change).
  size_t materialize_conf_capacity = 8192;
};

/// What a statement produced.
struct StatementResult {
  enum class Kind {
    kMessage,   ///< DDL/DML acknowledgements, EXPLAIN text, ENFORCE stats
    kTable,     ///< a certain relation (prob/possible/certain/ecount/show)
    kWorldSet,  ///< a world-set answer (plain SELECT)
  };
  Kind kind = Kind::kMessage;
  std::string message;
  Relation table;
  WsdDb world_set;  ///< contains relation "result"

  /// Renders the result for a console.
  std::string ToDisplayString(size_t max_rows = 50) const;
};

/// An interactive session over one world-set database.
class Session {
 public:
  Session() = default;
  /// Starts from an existing database (e.g. a generated census WSD).
  explicit Session(WsdDb db) : db_(std::move(db)) {}

  WsdDb& db() { return db_; }
  const WsdDb& db() const { return db_; }

  /// All session knobs, one aggregate (see SessionOptions).
  const SessionOptions& options() const { return options_; }
  SessionOptions& mutable_options() { return options_; }

  /// Assigns one knob by its dotted name ("conf.num_threads" = 4,
  /// "optimizer.enable" = false, ...) — the engine of SQL SET. Unknown
  /// names and type mismatches are InvalidArgument.
  Status SetOption(const std::string& name, const Value& value);
  /// Hash of every knob's current value: result caches keyed on
  /// statement text must also key on this, since settings change what a
  /// query returns (e.g. approx.seed).
  uint64_t SettingsFingerprint() const;

  // Pre-aggregate accessors, kept as shims over options(); prefer
  // options()/mutable_options() in new code.
  const ConfidenceOptions& conf_options() const { return options_.conf; }
  ConfidenceOptions& mutable_conf_options() { return options_.conf; }
  const ApproxOptions& approx_options() const { return options_.approx; }
  ApproxOptions& mutable_approx_options() { return options_.approx; }
  const ExecOptions& exec_options() const { return options_.exec; }
  ExecOptions& mutable_exec_options() { return options_.exec; }
  const OptimizerOptions& optimizer_options() const {
    return options_.optimizer;
  }
  OptimizerOptions& mutable_optimizer_options() { return options_.optimizer; }
  const DurabilityOptions& durability_options() const {
    return options_.durability;
  }
  DurabilityOptions& mutable_durability_options() {
    return options_.durability;
  }

  /// Applies one delta batch (core/delta.h) — the streaming ingest
  /// entry point. With a durable attachment the serialized batch is
  /// appended and fsynced as one wal::RecordType::kDelta record BEFORE
  /// applying, mirroring the statement path's logging discipline.
  Result<DeltaEffects> ApplyDelta(const DeltaBatch& batch);

  /// The session's content-keyed confidence cache, created lazily;
  /// nullptr while options().materialize_conf is false. Exposed for
  /// stats (hits/misses) and tests.
  MaterializedConf* conf_cache();

  /// File-I/O environment for snapshots, mapped loads and the WAL; null
  /// resets to Env::Default(). Set before SAVE/LOAD — existing
  /// attachments keep the env they were opened with.
  void set_env(Env* env) { env_ = env; }
  Env* env() const { return env_ ? env_ : Env::Default(); }

  /// True when the session is bound to a snapshot + WAL pair.
  bool has_durable_attachment() const { return attach_.has_value(); }
  /// The attached snapshot path (empty when none).
  std::string attached_path() const {
    return attach_ ? attach_->db_path : std::string();
  }
  /// Statements currently in the attached log (0 when none).
  uint64_t wal_record_count() const {
    return attach_ && attach_->writer ? attach_->writer->record_count() : 0;
  }

  /// Rewrites the attached snapshot from current state and resets its
  /// log — the SQL CHECKPOINT statement's engine. Fails without an
  /// attachment.
  Status Checkpoint();

  /// True while the session serves queries from a mapped snapshot
  /// (LOAD DATABASE ... MAPPED) instead of the resident database.
  bool is_mapped() const { return mapped_.has_value(); }
  /// The mapped snapshot, for resident-byte accounting and
  /// materialization stats; nullptr when not mapped.
  const MappedWsdDb* mapped_db() const {
    return mapped_ ? &*mapped_ : nullptr;
  }

  /// Parses and executes one statement.
  Result<StatementResult> Execute(const std::string& statement);

  /// Executes a ';'-separated script, stopping at the first error.
  Result<std::vector<StatementResult>> ExecuteScript(const std::string& sql);

  /// Executes an already-parsed statement.
  Result<StatementResult> ExecuteParsed(const Statement& stmt);

 private:
  /// The snapshot + WAL pair the session is bound to.
  struct DurableAttachment {
    std::string db_path;
    std::string wal_path;
    SnapshotFormat format = SnapshotFormat::kBinary;
    std::optional<wal::WalWriter> writer;
  };

  Result<StatementResult> ExecuteParsedImpl(const Statement& stmt);
  Result<StatementResult> RunSelect(const SelectStmt& stmt);
  Result<StatementResult> RunInsert(const InsertStmt& stmt);
  Result<StatementResult> RunEnforce(const EnforceStmt& stmt);
  Result<StatementResult> RunSet(const SetStmt& stmt);
  Result<StatementResult> RunDelete(const DeleteStmt& stmt);
  Result<StatementResult> RunShow(const ShowStmt& stmt);
  Result<StatementResult> RunSaveDb(const SaveDbStmt& stmt);
  Result<StatementResult> RunLoadDb(const LoadDbStmt& stmt);
  /// Statements that mutate or read the whole catalog force the mapped
  /// snapshot fully resident (into db_) and drop the mapping.
  Status EnsureResident();
  /// True for statement kinds whose effects must reach the WAL.
  static bool IsLoggedKind(Statement::Kind kind);
  /// Serializes db_ to `path` atomically; returns the bytes' fingerprint.
  Result<uint64_t> WriteSnapshot(const std::string& path,
                                 SnapshotFormat format, uint64_t* out_bytes);
  /// Binds the session to `db_path` + `wal_path` after a load: continues
  /// a matching log (tail-repaired), or starts a fresh one when the log
  /// is missing, corrupt, or from another snapshot generation.
  Status AttachForLoad(const std::string& db_path, const std::string& wal_path,
                       uint64_t fingerprint, SnapshotFormat format,
                       const Result<wal::WalContents>& contents);
  /// Applies WAL records to db_ (errors per record are deliberately
  /// ignored: a statement that failed when first executed fails — or
  /// half-applies — identically on replay). Returns records applied.
  size_t ReplayWal(const std::vector<wal::WalRecord>& records);

  WsdDb db_;
  /// Engaged after LOAD DATABASE ... MAPPED; db_ then holds the
  /// snapshot's schema-only skeleton for catalog statements while
  /// SELECTs materialize per-query scratch databases from the map.
  std::optional<MappedWsdDb> mapped_;
  SessionOptions options_;
  /// Lazily created by conf_cache(); recreated when
  /// materialize_conf_capacity changes.
  std::unique_ptr<MaterializedConf> conf_cache_;
  size_t conf_cache_capacity_ = 0;
  Env* env_ = nullptr;
  std::optional<DurableAttachment> attach_;
  /// True while replaying a WAL: suppresses re-logging.
  bool replaying_ = false;
};

}  // namespace sql
}  // namespace maybms

#endif  // MAYBMS_SQL_SESSION_H_
