// Session: the top-level entry point of the MayBMS engine. Owns a
// world-set database and executes query-language statements against it —
// the programmatic equivalent of the demo's console.
#ifndef MAYBMS_SQL_SESSION_H_
#define MAYBMS_SQL_SESSION_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/approx_conf.h"
#include "core/confidence.h"
#include "core/mapped_db.h"
#include "core/wsd.h"
#include "ra/expr_compile.h"
#include "sql/ast.h"
#include "sql/optimizer.h"
#include "storage/relation.h"

namespace maybms {
namespace sql {

/// What a statement produced.
struct StatementResult {
  enum class Kind {
    kMessage,   ///< DDL/DML acknowledgements, EXPLAIN text, ENFORCE stats
    kTable,     ///< a certain relation (prob/possible/certain/ecount/show)
    kWorldSet,  ///< a world-set answer (plain SELECT)
  };
  Kind kind = Kind::kMessage;
  std::string message;
  Relation table;
  WsdDb world_set;  ///< contains relation "result"

  /// Renders the result for a console.
  std::string ToDisplayString(size_t max_rows = 50) const;
};

/// An interactive session over one world-set database.
class Session {
 public:
  Session() = default;
  /// Starts from an existing database (e.g. a generated census WSD).
  explicit Session(WsdDb db) : db_(std::move(db)) {}

  WsdDb& db() { return db_; }
  const WsdDb& db() const { return db_; }

  /// Knobs of the probabilistic-aggregate lowering (PROB/POSSIBLE/
  /// CERTAIN/ECOUNT/ESUM): enumeration budget, cluster factorization,
  /// and the number of threads evaluating independent clusters.
  const ConfidenceOptions& conf_options() const { return conf_options_; }
  ConfidenceOptions& mutable_conf_options() { return conf_options_; }

  /// Knobs of the anytime approximate-confidence engine behind
  /// APPROX CONF(ε, δ): sampling seed, per-cluster budgets, thread
  /// count. The ε/δ pair itself comes from the query; seed and budgets
  /// from here.
  const ApproxOptions& approx_options() const { return approx_options_; }
  ApproxOptions& mutable_approx_options() { return approx_options_; }

  /// Knobs of lifted query evaluation: compiled vectorized expression
  /// programs vs the row-at-a-time interpreter, and batch parallelism.
  const ExecOptions& exec_options() const { return exec_options_; }
  ExecOptions& mutable_exec_options() { return exec_options_; }

  /// Knobs of the cost-based plan optimizer (per-rule switches and a
  /// master off switch); applied to every SELECT and EXPLAIN.
  const OptimizerOptions& optimizer_options() const {
    return optimizer_options_;
  }
  OptimizerOptions& mutable_optimizer_options() { return optimizer_options_; }

  /// True while the session serves queries from a mapped snapshot
  /// (LOAD DATABASE ... MAPPED) instead of the resident database.
  bool is_mapped() const { return mapped_.has_value(); }
  /// The mapped snapshot, for resident-byte accounting and
  /// materialization stats; nullptr when not mapped.
  const MappedWsdDb* mapped_db() const {
    return mapped_ ? &*mapped_ : nullptr;
  }

  /// Parses and executes one statement.
  Result<StatementResult> Execute(const std::string& statement);

  /// Executes a ';'-separated script, stopping at the first error.
  Result<std::vector<StatementResult>> ExecuteScript(const std::string& sql);

  /// Executes an already-parsed statement.
  Result<StatementResult> ExecuteParsed(const Statement& stmt);

 private:
  Result<StatementResult> RunSelect(const SelectStmt& stmt);
  Result<StatementResult> RunInsert(const InsertStmt& stmt);
  Result<StatementResult> RunEnforce(const EnforceStmt& stmt);
  Result<StatementResult> RunShow(const ShowStmt& stmt);
  /// Statements that mutate or read the whole catalog force the mapped
  /// snapshot fully resident (into db_) and drop the mapping.
  Status EnsureResident();

  WsdDb db_;
  /// Engaged after LOAD DATABASE ... MAPPED; db_ then holds the
  /// snapshot's schema-only skeleton for catalog statements while
  /// SELECTs materialize per-query scratch databases from the map.
  std::optional<MappedWsdDb> mapped_;
  ConfidenceOptions conf_options_;
  ApproxOptions approx_options_;
  ExecOptions exec_options_;
  OptimizerOptions optimizer_options_;
};

}  // namespace sql
}  // namespace maybms

#endif  // MAYBMS_SQL_SESSION_H_
