#include "sql/optimizer.h"

#include <algorithm>

#include "common/string_util.h"

namespace maybms {
namespace sql {

namespace {

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind() == ExprKind::kAnd) {
    SplitConjuncts(e->left(), out);
    SplitConjuncts(e->right(), out);
  } else {
    out->push_back(e);
  }
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return nullptr;
  ExprPtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = Expr::And(acc, conjuncts[i]);
  }
  return acc;
}

// Rebuilds a bound expression with every column index shifted by -offset
// and relabeled from `child` (used when pushing a predicate through a
// product to its right input).
ExprPtr ShiftColumns(const ExprPtr& e, size_t offset, const Schema& child) {
  switch (e->kind()) {
    case ExprKind::kConst:
      return e;
    case ExprKind::kColumn: {
      size_t idx = e->column_index() - offset;
      return Expr::ColumnIdx(idx, idx < child.size() ? child.attr(idx).name
                                                     : "");
    }
    case ExprKind::kCompare:
      return Expr::Compare(e->compare_op(),
                           ShiftColumns(e->left(), offset, child),
                           ShiftColumns(e->right(), offset, child));
    case ExprKind::kArith:
      return Expr::Arith(e->arith_op(), ShiftColumns(e->left(), offset, child),
                         ShiftColumns(e->right(), offset, child));
    case ExprKind::kAnd:
      return Expr::And(ShiftColumns(e->left(), offset, child),
                       ShiftColumns(e->right(), offset, child));
    case ExprKind::kOr:
      return Expr::Or(ShiftColumns(e->left(), offset, child),
                      ShiftColumns(e->right(), offset, child));
    case ExprKind::kNot:
      return Expr::Not(ShiftColumns(e->children()[0], offset, child));
    case ExprKind::kIsNull:
      return Expr::IsNull(ShiftColumns(e->children()[0], offset, child),
                          e->is_null_negated());
    case ExprKind::kIn:
      return Expr::In(ShiftColumns(e->children()[0], offset, child),
                      e->in_set());
  }
  return e;
}

struct ColumnRange {
  size_t min_col = SIZE_MAX;
  size_t max_col = 0;
  bool any = false;
};

ColumnRange RangeOf(const ExprPtr& bound) {
  std::vector<size_t> cols;
  bound->CollectColumns(&cols);
  ColumnRange r;
  for (size_t c : cols) {
    r.any = true;
    r.min_col = std::min(r.min_col, c);
    r.max_col = std::max(r.max_col, c);
  }
  return r;
}

class Optimizer {
 public:
  explicit Optimizer(const WsdDb& db) : db_(db) {}

  Result<Schema> SchemaOf(const PlanPtr& plan) {
    switch (plan->kind()) {
      case PlanKind::kScan: {
        MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* rel,
                                db_.GetRelation(plan->relation()));
        return rel->schema();
      }
      case PlanKind::kSelect:
      case PlanKind::kDistinct:
      case PlanKind::kSort:
      case PlanKind::kLimit:
        return SchemaOf(plan->input());
      case PlanKind::kProject: {
        MAYBMS_ASSIGN_OR_RETURN(Schema in, SchemaOf(plan->input()));
        Schema out;
        for (const auto& item : plan->project_items()) {
          MAYBMS_ASSIGN_OR_RETURN(ExprPtr b, item.expr->BindAgainst(in));
          std::string name = item.name;
          int k = 2;
          while (out.IndexOf(name)) name = item.name + "_" + std::to_string(k++);
          MAYBMS_RETURN_IF_ERROR(out.Add({name, InferExprType(*b, in)}));
        }
        return out;
      }
      case PlanKind::kProduct:
      case PlanKind::kJoin: {
        MAYBMS_ASSIGN_OR_RETURN(Schema l, SchemaOf(plan->left()));
        MAYBMS_ASSIGN_OR_RETURN(Schema r, SchemaOf(plan->right()));
        return Schema::Concat(l, r, DeriveName(plan->right()));
      }
      case PlanKind::kUnion:
      case PlanKind::kDifference:
        return SchemaOf(plan->left());
      case PlanKind::kAggregate: {
        // Not used by the lifted path; approximate.
        MAYBMS_ASSIGN_OR_RETURN(Schema in, SchemaOf(plan->input()));
        Schema out;
        for (const auto& g : plan->group_by()) {
          MAYBMS_ASSIGN_OR_RETURN(size_t i, in.Resolve(g));
          MAYBMS_RETURN_IF_ERROR(out.Add(in.attr(i)));
        }
        for (const auto& a : plan->aggregates()) {
          MAYBMS_RETURN_IF_ERROR(out.Add({a.name, ValueType::kDouble}));
        }
        return out;
      }
    }
    return Status::Internal("unreachable");
  }

  std::string DeriveName(const PlanPtr& plan) {
    if (plan->kind() == PlanKind::kScan) {
      auto rel = db_.GetRelation(plan->relation());
      if (rel.ok()) return (*rel)->display_name();
      return plan->relation();
    }
    if (plan->kind() == PlanKind::kSelect ||
        plan->kind() == PlanKind::kDistinct ||
        plan->kind() == PlanKind::kSort) {
      return DeriveName(plan->input());
    }
    return "r";
  }

  Result<PlanPtr> Rewrite(const PlanPtr& plan) {
    switch (plan->kind()) {
      case PlanKind::kSelect:
        return RewriteSelect(plan);
      case PlanKind::kScan:
        return plan;
      case PlanKind::kProject: {
        MAYBMS_ASSIGN_OR_RETURN(PlanPtr in, Rewrite(plan->input()));
        return Plan::Project(in, plan->project_items());
      }
      case PlanKind::kProduct: {
        MAYBMS_ASSIGN_OR_RETURN(PlanPtr l, Rewrite(plan->left()));
        MAYBMS_ASSIGN_OR_RETURN(PlanPtr r, Rewrite(plan->right()));
        return Plan::Product(l, r);
      }
      case PlanKind::kJoin: {
        MAYBMS_ASSIGN_OR_RETURN(PlanPtr l, Rewrite(plan->left()));
        MAYBMS_ASSIGN_OR_RETURN(PlanPtr r, Rewrite(plan->right()));
        return Plan::Join(l, r, plan->predicate());
      }
      case PlanKind::kUnion: {
        MAYBMS_ASSIGN_OR_RETURN(PlanPtr l, Rewrite(plan->left()));
        MAYBMS_ASSIGN_OR_RETURN(PlanPtr r, Rewrite(plan->right()));
        return Plan::Union(l, r);
      }
      case PlanKind::kDifference: {
        MAYBMS_ASSIGN_OR_RETURN(PlanPtr l, Rewrite(plan->left()));
        MAYBMS_ASSIGN_OR_RETURN(PlanPtr r, Rewrite(plan->right()));
        return Plan::Difference(l, r);
      }
      case PlanKind::kDistinct: {
        MAYBMS_ASSIGN_OR_RETURN(PlanPtr in, Rewrite(plan->input()));
        return Plan::Distinct(in);
      }
      case PlanKind::kSort: {
        MAYBMS_ASSIGN_OR_RETURN(PlanPtr in, Rewrite(plan->input()));
        return Plan::Sort(in, plan->sort_columns(), plan->sort_descending());
      }
      case PlanKind::kLimit: {
        MAYBMS_ASSIGN_OR_RETURN(PlanPtr in, Rewrite(plan->input()));
        return Plan::Limit(in, plan->limit());
      }
      case PlanKind::kAggregate: {
        MAYBMS_ASSIGN_OR_RETURN(PlanPtr in, Rewrite(plan->input()));
        return Plan::Aggregate(in, plan->group_by(), plan->aggregates());
      }
    }
    return Status::Internal("unreachable");
  }

 private:
  Result<PlanPtr> RewriteSelect(const PlanPtr& plan) {
    MAYBMS_ASSIGN_OR_RETURN(PlanPtr input, Rewrite(plan->input()));
    ExprPtr pred = plan->predicate();

    // Push into products/joins.
    if (input->kind() == PlanKind::kProduct ||
        input->kind() == PlanKind::kJoin) {
      MAYBMS_ASSIGN_OR_RETURN(Schema concat, SchemaOf(input));
      MAYBMS_ASSIGN_OR_RETURN(Schema lschema, SchemaOf(input->left()));
      size_t larity = lschema.size();
      MAYBMS_ASSIGN_OR_RETURN(Schema rschema, SchemaOf(input->right()));
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr bound, pred->BindAgainst(concat));
      std::vector<ExprPtr> conjuncts;
      SplitConjuncts(bound, &conjuncts);
      std::vector<ExprPtr> to_left, to_right, cross;
      for (const auto& c : conjuncts) {
        ColumnRange r = RangeOf(c);
        if (!r.any || r.max_col < larity) {
          to_left.push_back(c);
        } else if (r.min_col >= larity) {
          to_right.push_back(ShiftColumns(c, larity, rschema));
        } else {
          cross.push_back(c);
        }
      }
      PlanPtr l = input->left();
      PlanPtr r = input->right();
      if (!to_left.empty()) {
        MAYBMS_ASSIGN_OR_RETURN(l, Rewrite(Plan::Select(
                                       l, CombineConjuncts(to_left))));
      }
      if (!to_right.empty()) {
        MAYBMS_ASSIGN_OR_RETURN(r, Rewrite(Plan::Select(
                                       r, CombineConjuncts(to_right))));
      }
      ExprPtr join_pred = CombineConjuncts(cross);
      if (input->kind() == PlanKind::kJoin && input->predicate()) {
        join_pred = join_pred
                        ? Expr::And(input->predicate(), join_pred)
                        : input->predicate();
      }
      if (join_pred) return Plan::Join(l, r, join_pred);
      return Plan::Product(l, r);
    }

    // Merge adjacent selects.
    if (input->kind() == PlanKind::kSelect) {
      return Rewrite(
          Plan::Select(input->input(), Expr::And(input->predicate(), pred)));
    }
    // Push through union (both sides see the same schema).
    if (input->kind() == PlanKind::kUnion) {
      MAYBMS_ASSIGN_OR_RETURN(
          PlanPtr l, Rewrite(Plan::Select(input->left(), pred)));
      MAYBMS_ASSIGN_OR_RETURN(
          PlanPtr r, Rewrite(Plan::Select(input->right(), pred)));
      return Plan::Union(l, r);
    }
    return Plan::Select(input, pred);
  }

  const WsdDb& db_;
};

}  // namespace

Result<PlanPtr> Optimize(const PlanPtr& plan, const WsdDb& db) {
  Optimizer opt(db);
  return opt.Rewrite(plan);
}

Result<Schema> PlanSchema(const PlanPtr& plan, const WsdDb& db) {
  Optimizer opt(db);
  return opt.SchemaOf(plan);
}

}  // namespace sql
}  // namespace maybms
