#include "sql/optimizer.h"

#include <algorithm>
#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "core/shard.h"
#include "storage/packed_value.h"

namespace maybms {
namespace sql {

namespace {

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind() == ExprKind::kAnd) {
    SplitConjuncts(e->left(), out);
    SplitConjuncts(e->right(), out);
  } else {
    out->push_back(e);
  }
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return nullptr;
  ExprPtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = Expr::And(acc, conjuncts[i]);
  }
  return acc;
}

bool IsConstBool(const ExprPtr& e, bool value) {
  return e->kind() == ExprKind::kConst && e->const_value().is_bool() &&
         e->const_value().as_bool() == value;
}

/// Rebuilds an interior node with new children; kConst/kColumn pass
/// through untouched.
ExprPtr RebuildExpr(const ExprPtr& e, const std::vector<ExprPtr>& kids) {
  switch (e->kind()) {
    case ExprKind::kConst:
    case ExprKind::kColumn:
      return e;
    case ExprKind::kCompare:
      return Expr::Compare(e->compare_op(), kids[0], kids[1]);
    case ExprKind::kArith:
      return Expr::Arith(e->arith_op(), kids[0], kids[1]);
    case ExprKind::kAnd:
      return Expr::And(kids[0], kids[1]);
    case ExprKind::kOr:
      return Expr::Or(kids[0], kids[1]);
    case ExprKind::kNot:
      return Expr::Not(kids[0]);
    case ExprKind::kIsNull:
      return Expr::IsNull(kids[0], e->is_null_negated());
    case ExprKind::kIn:
      return Expr::In(kids[0], e->in_set());
  }
  return e;
}

/// Rebuilds a bound expression with every column index rewritten through
/// `f`. When `names` is given, columns are relabeled from it (by their
/// new index); otherwise the old label is kept.
ExprPtr MapColumns(const ExprPtr& e, const std::function<size_t(size_t)>& f,
                   const Schema* names) {
  if (e->kind() == ExprKind::kConst) return e;
  if (e->kind() == ExprKind::kColumn) {
    size_t idx = f(e->column_index());
    std::string name = (names != nullptr && idx < names->size())
                           ? names->attr(idx).name
                           : e->column_name();
    return Expr::ColumnIdx(idx, std::move(name));
  }
  std::vector<ExprPtr> kids;
  kids.reserve(e->children().size());
  for (const auto& c : e->children()) kids.push_back(MapColumns(c, f, names));
  return RebuildExpr(e, kids);
}

// Rebuilds a bound expression with every column index shifted by -offset
// and relabeled from `child` (used when pushing a predicate through a
// product to its right input).
ExprPtr ShiftColumns(const ExprPtr& e, size_t offset, const Schema& child) {
  return MapColumns(e, [offset](size_t i) { return i - offset; }, &child);
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

/// Evaluates constant subtrees bottom-up through the interpreter itself,
/// so folding can never fork semantics: subtrees whose evaluation errors
/// (e.g. comparing a string with an int) are left in place and error at
/// run time exactly as before. The only structural folds are the ones
/// the interpreter short-circuits on the *left* operand — AND(false, x)
/// and OR(true, x) never evaluate x, so dropping x is exact.
ExprPtr FoldExpr(const ExprPtr& e) {
  if (e->kind() == ExprKind::kConst || e->kind() == ExprKind::kColumn) {
    return e;
  }
  std::vector<ExprPtr> kids;
  kids.reserve(e->children().size());
  bool changed = false;
  for (const auto& c : e->children()) {
    ExprPtr f = FoldExpr(c);
    changed |= f.get() != c.get();
    kids.push_back(std::move(f));
  }
  ExprPtr node = changed ? RebuildExpr(e, kids) : e;
  if (node->kind() == ExprKind::kAnd && IsConstBool(node->left(), false)) {
    return node->left();
  }
  if (node->kind() == ExprKind::kOr && IsConstBool(node->left(), true)) {
    return node->left();
  }
  bool all_const = true;
  for (const auto& c : node->children()) {
    if (c->kind() != ExprKind::kConst) {
      all_const = false;
      break;
    }
  }
  if (all_const) {
    Result<Value> v = node->Eval(Tuple{});
    if (v.ok()) return Expr::Const(*std::move(v));
  }
  return node;
}

/// Drops conjuncts that folded to TRUE; returns nullptr when every
/// conjunct did (safe at predicate roots: WHERE semantics of the
/// remaining conjunction are unchanged).
ExprPtr DropTrueConjuncts(const ExprPtr& pred) {
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(pred, &conjuncts);
  std::vector<ExprPtr> kept;
  for (const auto& c : conjuncts) {
    if (!IsConstBool(c, true)) kept.push_back(c);
  }
  if (kept.size() == conjuncts.size()) return pred;
  return CombineConjuncts(kept);
}

struct ColumnRange {
  size_t min_col = SIZE_MAX;
  size_t max_col = 0;
  bool any = false;
};

ColumnRange RangeOf(const ExprPtr& bound) {
  std::vector<size_t> cols;
  bound->CollectColumns(&cols);
  ColumnRange r;
  for (size_t c : cols) {
    r.any = true;
    r.min_col = std::min(r.min_col, c);
    r.max_col = std::max(r.max_col, c);
  }
  return r;
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

/// The estimator's view of one plan node: output cardinality (template
/// tuples) and a per-column distinct-value estimate.
struct PlanEst {
  double rows = 0;
  std::vector<double> distinct;
};

class Optimizer {
 public:
  Optimizer(const WsdDb& db, const OptimizerOptions& options)
      : db_(db), options_(options) {}

  Result<Schema> SchemaOf(const PlanPtr& plan) {
    switch (plan->kind()) {
      case PlanKind::kScan: {
        MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* rel,
                                db_.GetRelation(plan->relation()));
        return rel->schema();
      }
      case PlanKind::kSelect:
      case PlanKind::kDistinct:
      case PlanKind::kSort:
      case PlanKind::kLimit:
        return SchemaOf(plan->input());
      case PlanKind::kProject: {
        MAYBMS_ASSIGN_OR_RETURN(Schema in, SchemaOf(plan->input()));
        Schema out;
        for (const auto& item : plan->project_items()) {
          MAYBMS_ASSIGN_OR_RETURN(ExprPtr b, item.expr->BindAgainst(in));
          std::string name = item.name;
          int k = 2;
          while (out.IndexOf(name)) name = item.name + "_" + std::to_string(k++);
          MAYBMS_RETURN_IF_ERROR(out.Add({name, InferExprType(*b, in)}));
        }
        return out;
      }
      case PlanKind::kProduct:
      case PlanKind::kJoin: {
        MAYBMS_ASSIGN_OR_RETURN(Schema l, SchemaOf(plan->left()));
        MAYBMS_ASSIGN_OR_RETURN(Schema r, SchemaOf(plan->right()));
        return Schema::Concat(l, r, DeriveName(plan->right()));
      }
      case PlanKind::kUnion:
      case PlanKind::kDifference:
        return SchemaOf(plan->left());
      case PlanKind::kAggregate: {
        // Not used by the lifted path; approximate.
        MAYBMS_ASSIGN_OR_RETURN(Schema in, SchemaOf(plan->input()));
        Schema out;
        for (const auto& g : plan->group_by()) {
          MAYBMS_ASSIGN_OR_RETURN(size_t i, in.Resolve(g));
          MAYBMS_RETURN_IF_ERROR(out.Add(in.attr(i)));
        }
        for (const auto& a : plan->aggregates()) {
          MAYBMS_RETURN_IF_ERROR(out.Add({a.name, ValueType::kDouble}));
        }
        return out;
      }
    }
    return Status::Internal("unreachable");
  }

  std::string DeriveName(const PlanPtr& plan) {
    if (plan->kind() == PlanKind::kScan) {
      auto rel = db_.GetRelation(plan->relation());
      if (rel.ok()) return (*rel)->display_name();
      return plan->relation();
    }
    if (plan->kind() == PlanKind::kSelect ||
        plan->kind() == PlanKind::kDistinct ||
        plan->kind() == PlanKind::kSort) {
      return DeriveName(plan->input());
    }
    return "r";
  }

  // --- pass driver ---------------------------------------------------------

  Result<PlanPtr> Run(const PlanPtr& plan) {
    PlanPtr p = plan;
    if (options_.fold_constants) {
      MAYBMS_ASSIGN_OR_RETURN(p, FoldPlan(p));
    }
    if (options_.push_predicates) {
      MAYBMS_ASSIGN_OR_RETURN(p, Rewrite(p));
    }
    if (options_.reorder_joins) {
      MAYBMS_ASSIGN_OR_RETURN(p, ReorderPass(p));
    }
    if (options_.prune_projections) {
      MAYBMS_ASSIGN_OR_RETURN(p, PrunePass(p));
    }
    return p;
  }

  // --- constant-folding pass ----------------------------------------------

  Result<PlanPtr> FoldPlan(const PlanPtr& plan) {
    switch (plan->kind()) {
      case PlanKind::kScan:
        return plan;
      case PlanKind::kSelect: {
        MAYBMS_ASSIGN_OR_RETURN(PlanPtr in, FoldPlan(plan->input()));
        ExprPtr pred = DropTrueConjuncts(FoldExpr(plan->predicate()));
        if (!pred) return in;  // σ_true is the identity
        return Plan::Select(in, pred);
      }
      case PlanKind::kJoin: {
        MAYBMS_ASSIGN_OR_RETURN(PlanPtr l, FoldPlan(plan->left()));
        MAYBMS_ASSIGN_OR_RETURN(PlanPtr r, FoldPlan(plan->right()));
        ExprPtr pred = plan->predicate();
        if (pred) pred = DropTrueConjuncts(FoldExpr(pred));
        if (!pred) return Plan::Product(l, r);  // ⋈_true = ×
        return Plan::Join(l, r, pred);
      }
      case PlanKind::kProject: {
        MAYBMS_ASSIGN_OR_RETURN(PlanPtr in, FoldPlan(plan->input()));
        std::vector<ProjectItem> items;
        items.reserve(plan->project_items().size());
        for (const auto& item : plan->project_items()) {
          items.push_back({FoldExpr(item.expr), item.name});
        }
        return Plan::Project(in, std::move(items));
      }
      case PlanKind::kAggregate: {
        MAYBMS_ASSIGN_OR_RETURN(PlanPtr in, FoldPlan(plan->input()));
        std::vector<AggSpec> aggs = plan->aggregates();
        for (auto& a : aggs) {
          if (a.arg) a.arg = FoldExpr(a.arg);
        }
        return Plan::Aggregate(in, plan->group_by(), std::move(aggs));
      }
      default: {
        std::vector<PlanPtr> kids;
        kids.reserve(plan->children().size());
        for (const auto& c : plan->children()) {
          MAYBMS_ASSIGN_OR_RETURN(PlanPtr k, FoldPlan(c));
          kids.push_back(std::move(k));
        }
        return RebuildWithChildren(plan, std::move(kids));
      }
    }
  }

  // --- predicate-pushdown pass --------------------------------------------

  Result<PlanPtr> Rewrite(const PlanPtr& plan) {
    switch (plan->kind()) {
      case PlanKind::kSelect:
        return RewriteSelect(plan);
      case PlanKind::kScan:
        return plan;
      default: {
        std::vector<PlanPtr> kids;
        kids.reserve(plan->children().size());
        for (const auto& c : plan->children()) {
          MAYBMS_ASSIGN_OR_RETURN(PlanPtr k, Rewrite(c));
          kids.push_back(std::move(k));
        }
        return RebuildWithChildren(plan, std::move(kids));
      }
    }
  }

  // --- cardinality estimation ---------------------------------------------

  Result<PlanEst> Estimate(const PlanPtr& plan) {
    auto it = est_cache_.find(plan.get());
    if (it != est_cache_.end()) return it->second;
    PlanEst e;
    switch (plan->kind()) {
      case PlanKind::kScan: {
        MAYBMS_ASSIGN_OR_RETURN(e, ScanEstimate(plan->relation()));
        break;
      }
      case PlanKind::kSelect: {
        MAYBMS_ASSIGN_OR_RETURN(PlanEst in, Estimate(plan->input()));
        MAYBMS_ASSIGN_OR_RETURN(Schema s, SchemaOf(plan->input()));
        double sel = 0.5;
        auto bound = plan->predicate()->BindAgainst(s);
        if (bound.ok()) sel = Selectivity(**bound, in);
        e.rows = in.rows * sel;
        // Directly above a Scan, the per-shard column ranges give a hard
        // upper bound: shards whose possible values are disjoint from
        // the predicate's bounds contribute no rows in any world.
        if (bound.ok() && plan->input()->kind() == PlanKind::kScan) {
          auto rel = db_.GetRelation(plan->input()->relation());
          if (rel.ok()) {
            const ShardPartition& part = GetShardPartition(db_, **rel);
            std::vector<char> mask =
                PruneShards(part, ExtractColumnBounds(**bound, s.size()));
            double surviving = 0;
            for (size_t i = 0; i < part.shards.size(); ++i) {
              if (mask[i]) {
                surviving += static_cast<double>(part.shards[i].row_end -
                                                 part.shards[i].row_begin);
              }
            }
            e.rows = std::min(e.rows, surviving);
          }
        }
        e.distinct = std::move(in.distinct);
        break;
      }
      case PlanKind::kProject: {
        MAYBMS_ASSIGN_OR_RETURN(PlanEst in, Estimate(plan->input()));
        MAYBMS_ASSIGN_OR_RETURN(Schema s, SchemaOf(plan->input()));
        e.rows = in.rows;
        for (const auto& item : plan->project_items()) {
          double d = std::max(in.rows, 1.0);
          auto b = item.expr->BindAgainst(s);
          if (b.ok() && (*b)->kind() == ExprKind::kColumn &&
              (*b)->column_index() < in.distinct.size()) {
            d = in.distinct[(*b)->column_index()];
          }
          e.distinct.push_back(d);
        }
        break;
      }
      case PlanKind::kProduct:
      case PlanKind::kJoin: {
        MAYBMS_ASSIGN_OR_RETURN(PlanEst l, Estimate(plan->left()));
        MAYBMS_ASSIGN_OR_RETURN(PlanEst r, Estimate(plan->right()));
        PlanEst concat;
        concat.rows = l.rows * r.rows;
        concat.distinct = l.distinct;
        concat.distinct.insert(concat.distinct.end(), r.distinct.begin(),
                               r.distinct.end());
        double sel = 1.0;
        if (plan->kind() == PlanKind::kJoin && plan->predicate()) {
          MAYBMS_ASSIGN_OR_RETURN(Schema s, SchemaOf(plan));
          auto bound = plan->predicate()->BindAgainst(s);
          if (bound.ok()) sel = Selectivity(**bound, concat);
        }
        e.rows = concat.rows * sel;
        e.distinct = std::move(concat.distinct);
        break;
      }
      case PlanKind::kUnion: {
        MAYBMS_ASSIGN_OR_RETURN(PlanEst l, Estimate(plan->left()));
        MAYBMS_ASSIGN_OR_RETURN(PlanEst r, Estimate(plan->right()));
        e.rows = l.rows + r.rows;
        e.distinct = std::move(l.distinct);
        for (size_t i = 0; i < e.distinct.size() && i < r.distinct.size();
             ++i) {
          e.distinct[i] += r.distinct[i];
        }
        break;
      }
      case PlanKind::kDifference: {
        MAYBMS_ASSIGN_OR_RETURN(e, Estimate(plan->left()));
        break;
      }
      case PlanKind::kDistinct: {
        MAYBMS_ASSIGN_OR_RETURN(PlanEst in, Estimate(plan->input()));
        double prod = 1.0;
        for (double d : in.distinct) {
          prod = std::min(prod * std::max(d, 1.0), 1e18);
        }
        e.rows = std::min(in.rows, prod);
        e.distinct = std::move(in.distinct);
        break;
      }
      case PlanKind::kSort: {
        MAYBMS_ASSIGN_OR_RETURN(e, Estimate(plan->input()));
        break;
      }
      case PlanKind::kLimit: {
        MAYBMS_ASSIGN_OR_RETURN(e, Estimate(plan->input()));
        e.rows = std::min(e.rows, static_cast<double>(plan->limit()));
        break;
      }
      case PlanKind::kAggregate: {
        MAYBMS_ASSIGN_OR_RETURN(PlanEst in, Estimate(plan->input()));
        MAYBMS_ASSIGN_OR_RETURN(Schema s, SchemaOf(plan->input()));
        double groups = 1.0;
        for (const auto& g : plan->group_by()) {
          auto i = s.IndexOf(g);
          groups *= (i.has_value() && *i < in.distinct.size())
                        ? std::max(in.distinct[*i], 1.0)
                        : std::max(in.rows, 1.0);
          groups = std::min(groups, 1e18);
        }
        e.rows = plan->group_by().empty() ? 1.0
                                          : std::min(groups, std::max(in.rows, 1.0));
        e.distinct.assign(plan->group_by().size() + plan->aggregates().size(),
                          e.rows);
        break;
      }
    }
    est_cache_[plan.get()] = e;
    // Pin the node: cache keys are raw pointers, so estimated plans must
    // outlive the optimizer or a recycled allocation could alias a key.
    est_keepalive_.push_back(plan);
    return e;
  }

  Result<std::string> Annotate(const PlanPtr& plan, int indent) {
    return AnnotateWithBounds(plan, indent, nullptr);
  }

  /// `bounds`, when set, is the conjunctive column interval accumulated
  /// from the Select chain above this node (schema-aligned with it).
  /// Scan lines report how many shards survive it as [shards k/N].
  Result<std::string> AnnotateWithBounds(
      const PlanPtr& plan, int indent,
      const std::vector<ColumnBound>* bounds) {
    MAYBMS_ASSIGN_OR_RETURN(PlanEst est, Estimate(plan));
    std::string out(static_cast<size_t>(indent) * 2, ' ');
    out += plan->NodeString() + StrFormat("  [~%.3g rows]", est.rows);
    if (plan->kind() == PlanKind::kScan) {
      auto rel = db_.GetRelation(plan->relation());
      if (rel.ok()) {
        const ShardPartition& part = GetShardPartition(db_, **rel);
        size_t kept = part.shards.size();
        if (bounds != nullptr) {
          std::vector<char> mask = PruneShards(part, *bounds);
          kept = static_cast<size_t>(
              std::count(mask.begin(), mask.end(), char{1}));
        }
        out += StrFormat("  [shards %zu/%zu]", kept, part.shards.size());
      }
    }
    // Accumulate bounds down Select chains; anything else resets them.
    std::vector<ColumnBound> child_bounds;
    const std::vector<ColumnBound>* pass = nullptr;
    if (plan->kind() == PlanKind::kSelect) {
      MAYBMS_ASSIGN_OR_RETURN(Schema s, SchemaOf(plan->input()));
      child_bounds.assign(s.size(), ColumnBound{});
      if (bounds != nullptr && bounds->size() == s.size()) {
        child_bounds = *bounds;
      }
      auto bound = plan->predicate()->BindAgainst(s);
      if (bound.ok()) {
        std::vector<ColumnBound> own = ExtractColumnBounds(**bound, s.size());
        for (size_t c = 0; c < s.size(); ++c) {
          if (!own[c].active) continue;
          child_bounds[c].active = true;
          child_bounds[c].lo = std::max(child_bounds[c].lo, own[c].lo);
          child_bounds[c].hi = std::min(child_bounds[c].hi, own[c].hi);
        }
      }
      pass = &child_bounds;
    }
    for (const auto& c : plan->children()) {
      MAYBMS_ASSIGN_OR_RETURN(std::string sub,
                              AnnotateWithBounds(c, indent + 1, pass));
      out += "\n" + sub;
    }
    return out;
  }

 private:
  static Result<PlanPtr> RebuildWithChildren(const PlanPtr& plan,
                                             std::vector<PlanPtr> kids) {
    switch (plan->kind()) {
      case PlanKind::kScan:
        return plan;
      case PlanKind::kSelect:
        return Plan::Select(kids[0], plan->predicate());
      case PlanKind::kProject:
        return Plan::Project(kids[0], plan->project_items());
      case PlanKind::kProduct:
        return Plan::Product(kids[0], kids[1]);
      case PlanKind::kJoin:
        return Plan::Join(kids[0], kids[1], plan->predicate());
      case PlanKind::kUnion:
        return Plan::Union(kids[0], kids[1]);
      case PlanKind::kDifference:
        return Plan::Difference(kids[0], kids[1]);
      case PlanKind::kDistinct:
        return Plan::Distinct(kids[0]);
      case PlanKind::kSort:
        return Plan::Sort(kids[0], plan->sort_columns(),
                          plan->sort_descending());
      case PlanKind::kLimit:
        return Plan::Limit(kids[0], plan->limit());
      case PlanKind::kAggregate:
        return Plan::Aggregate(kids[0], plan->group_by(), plan->aggregates());
    }
    return Status::Internal("unreachable");
  }

  Result<PlanPtr> RewriteSelect(const PlanPtr& plan) {
    MAYBMS_ASSIGN_OR_RETURN(PlanPtr input, Rewrite(plan->input()));
    ExprPtr pred = plan->predicate();

    // Push into products/joins.
    if (input->kind() == PlanKind::kProduct ||
        input->kind() == PlanKind::kJoin) {
      MAYBMS_ASSIGN_OR_RETURN(Schema concat, SchemaOf(input));
      MAYBMS_ASSIGN_OR_RETURN(Schema lschema, SchemaOf(input->left()));
      size_t larity = lschema.size();
      MAYBMS_ASSIGN_OR_RETURN(Schema rschema, SchemaOf(input->right()));
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr bound, pred->BindAgainst(concat));
      std::vector<ExprPtr> conjuncts;
      SplitConjuncts(bound, &conjuncts);
      std::vector<ExprPtr> to_left, to_right, cross;
      for (const auto& c : conjuncts) {
        if (IsConstBool(c, true)) continue;  // no-op conjunct
        ColumnRange r = RangeOf(c);
        if (!r.any || r.max_col < larity) {
          to_left.push_back(c);
        } else if (r.min_col >= larity) {
          to_right.push_back(ShiftColumns(c, larity, rschema));
        } else {
          cross.push_back(c);
        }
      }
      PlanPtr l = input->left();
      PlanPtr r = input->right();
      if (!to_left.empty()) {
        MAYBMS_ASSIGN_OR_RETURN(l, Rewrite(Plan::Select(
                                       l, CombineConjuncts(to_left))));
      }
      if (!to_right.empty()) {
        MAYBMS_ASSIGN_OR_RETURN(r, Rewrite(Plan::Select(
                                       r, CombineConjuncts(to_right))));
      }
      ExprPtr join_pred = CombineConjuncts(cross);
      if (input->kind() == PlanKind::kJoin && input->predicate()) {
        join_pred = join_pred
                        ? Expr::And(input->predicate(), join_pred)
                        : input->predicate();
      }
      if (join_pred) return Plan::Join(l, r, join_pred);
      return Plan::Product(l, r);
    }

    // Merge adjacent selects.
    if (input->kind() == PlanKind::kSelect) {
      return Rewrite(
          Plan::Select(input->input(), Expr::And(input->predicate(), pred)));
    }
    // Push through union (both sides see the same schema).
    if (input->kind() == PlanKind::kUnion) {
      MAYBMS_ASSIGN_OR_RETURN(
          PlanPtr l, Rewrite(Plan::Select(input->left(), pred)));
      MAYBMS_ASSIGN_OR_RETURN(
          PlanPtr r, Rewrite(Plan::Select(input->right(), pred)));
      return Plan::Union(l, r);
    }
    // σ commutes with δ (per world: filtering a deduplicated bag equals
    // deduplicating the filtered bag — survival is decided per value).
    if (input->kind() == PlanKind::kDistinct) {
      MAYBMS_ASSIGN_OR_RETURN(
          PlanPtr pushed, Rewrite(Plan::Select(input->input(), pred)));
      return Plan::Distinct(pushed);
    }
    // Push through pure-column projections (e.g. the per-alias renaming
    // projections the SQL planner inserts): σ_p(π(R)) = π(σ_p'(R)) with
    // p's columns substituted by the referenced items. Only fires when
    // every referenced item is a plain column — substituting computed
    // expressions could change which rows they are evaluated on.
    if (input->kind() == PlanKind::kProject) {
      MAYBMS_ASSIGN_OR_RETURN(Schema out_schema, SchemaOf(input));
      MAYBMS_ASSIGN_OR_RETURN(Schema in_schema, SchemaOf(input->input()));
      auto bound = pred->BindAgainst(out_schema);
      if (bound.ok()) {
        std::vector<size_t> cols;
        (*bound)->CollectColumns(&cols);
        std::vector<size_t> target(out_schema.size(), SIZE_MAX);
        bool pushable = true;
        for (size_t c : cols) {
          if (c >= input->project_items().size() ||
              input->project_items()[c].expr->kind() != ExprKind::kColumn) {
            pushable = false;
            break;
          }
          auto b = input->project_items()[c].expr->BindAgainst(in_schema);
          if (!b.ok()) {
            pushable = false;
            break;
          }
          target[c] = (*b)->column_index();
        }
        if (pushable) {
          ExprPtr pushed = MapColumns(
              *bound, [&target](size_t i) { return target[i]; }, &in_schema);
          return Rewrite(Plan::Project(
              Plan::Select(input->input(), pushed), input->project_items()));
        }
      }
    }
    return Plan::Select(input, pred);
  }

  // --- scan statistics -----------------------------------------------------

  // Per-optimizer (i.e. per-statement) scan cache: WsdRelation exposes
  // raw mutable access (mutable_tuples), so a cross-statement cache
  // would need invalidation plumbing through every lifted operator; the
  // per-slot distinct counts, the expensive part on or-set-heavy data,
  // ARE cached across statements on the components themselves.
  Result<PlanEst> ScanEstimate(const std::string& name) {
    std::string key = ToLower(name);
    auto it = scan_cache_.find(key);
    if (it != scan_cache_.end()) return it->second;
    MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* rel, db_.GetRelation(name));
    PlanEst e;
    e.rows = static_cast<double>(rel->NumTuples());
    const size_t ncols = rel->schema().size();
    e.distinct.assign(ncols, 0.0);
    std::unordered_set<PackedValue, PackedValueHash> certains;
    std::set<std::pair<ComponentId, uint32_t>> refs;
    for (size_t c = 0; c < ncols; ++c) {
      certains.clear();
      refs.clear();
      for (const auto& t : rel->tuples()) {
        const Cell& cell = t.cells[c];
        if (cell.is_certain()) {
          certains.insert(PackedValue::FromValue(cell.value()));
        } else {
          refs.insert({cell.ref().cid, cell.ref().slot});
        }
      }
      // Certain cells count exactly; uncertain columns add the cached
      // per-slot distinct counts of the referenced components (an upper
      // bound across worlds — values may repeat between slots).
      double d = static_cast<double>(certains.size());
      for (const auto& [cid, slot] : refs) {
        const ComponentStats& cs = db_.component(cid).GetStats();
        if (slot < cs.distinct.size()) {
          d += static_cast<double>(cs.distinct[slot]);
        }
      }
      e.distinct[c] = d;
    }
    scan_cache_[key] = e;
    return e;
  }

  double Selectivity(const Expr& e, const PlanEst& in) {
    switch (e.kind()) {
      case ExprKind::kConst: {
        const Value& v = e.const_value();
        if (v.is_bool()) return v.as_bool() ? 1.0 : 0.0;
        if (v.is_null()) return 0.0;
        return 1.0;
      }
      case ExprKind::kColumn:
        return 0.5;
      case ExprKind::kCompare: {
        auto dist = [&in](const ExprPtr& c) -> double {
          if (c->kind() == ExprKind::kColumn && c->is_bound() &&
              c->column_index() < in.distinct.size()) {
            return std::max(in.distinct[c->column_index()], 1.0);
          }
          return -1.0;
        };
        double dl = dist(e.left());
        double dr = dist(e.right());
        bool lconst = e.left()->kind() == ExprKind::kConst;
        bool rconst = e.right()->kind() == ExprKind::kConst;
        double eq;
        if (dl > 0 && rconst) {
          eq = 1.0 / dl;
        } else if (dr > 0 && lconst) {
          eq = 1.0 / dr;
        } else if (dl > 0 && dr > 0) {
          eq = 1.0 / std::max(dl, dr);
        } else {
          eq = 1.0 / 3.0;
        }
        switch (e.compare_op()) {
          case CompareOp::kEq:
            return eq;
          case CompareOp::kNe:
            return std::max(0.0, 1.0 - eq);
          default:
            return 1.0 / 3.0;
        }
      }
      case ExprKind::kArith:
        return 1.0 / 3.0;
      case ExprKind::kAnd:
        return Selectivity(*e.left(), in) * Selectivity(*e.right(), in);
      case ExprKind::kOr: {
        double a = Selectivity(*e.left(), in);
        double b = Selectivity(*e.right(), in);
        return a + b - a * b;
      }
      case ExprKind::kNot:
        return std::max(0.0, 1.0 - Selectivity(*e.children()[0], in));
      case ExprKind::kIsNull:
        return e.is_null_negated() ? 0.9 : 0.1;
      case ExprKind::kIn: {
        const ExprPtr& c = e.children()[0];
        if (c->kind() == ExprKind::kColumn && c->is_bound() &&
            c->column_index() < in.distinct.size()) {
          double d = std::max(in.distinct[c->column_index()], 1.0);
          return std::min(1.0, static_cast<double>(e.in_set().size()) / d);
        }
        return 0.5;
      }
    }
    return 0.5;
  }

  // --- join reordering -----------------------------------------------------

  struct ChainLeaf {
    PlanPtr plan;
    Schema schema;
    size_t offset = 0;  ///< absolute start in the flat leaf concat
    PlanEst est;
  };

  Status CollectChain(const PlanPtr& node, std::vector<ChainLeaf>* leaves,
                      std::vector<ExprPtr>* conjuncts, size_t* total) {
    if (node->kind() == PlanKind::kProduct || node->kind() == PlanKind::kJoin) {
      size_t first_col = *total;
      MAYBMS_RETURN_IF_ERROR(CollectChain(node->left(), leaves, conjuncts,
                                          total));
      MAYBMS_RETURN_IF_ERROR(CollectChain(node->right(), leaves, conjuncts,
                                          total));
      if (node->kind() == PlanKind::kJoin && node->predicate()) {
        MAYBMS_ASSIGN_OR_RETURN(Schema local, SchemaOf(node));
        MAYBMS_ASSIGN_OR_RETURN(ExprPtr bound,
                                node->predicate()->BindAgainst(local));
        ExprPtr abs =
            first_col == 0
                ? bound
                : MapColumns(
                      bound, [first_col](size_t i) { return i + first_col; },
                      nullptr);
        std::vector<ExprPtr> split;
        SplitConjuncts(abs, &split);
        for (auto& c : split) {
          if (!IsConstBool(c, true)) conjuncts->push_back(std::move(c));
        }
      }
      return Status::OK();
    }
    MAYBMS_ASSIGN_OR_RETURN(Schema s, SchemaOf(node));
    ChainLeaf leaf;
    leaf.plan = node;
    leaf.schema = std::move(s);
    leaf.offset = *total;
    *total += leaf.schema.size();
    leaves->push_back(std::move(leaf));
    return Status::OK();
  }

  Result<PlanPtr> ReorderPass(const PlanPtr& plan) {
    if (plan->kind() != PlanKind::kProduct && plan->kind() != PlanKind::kJoin) {
      std::vector<PlanPtr> kids;
      kids.reserve(plan->children().size());
      for (const auto& c : plan->children()) {
        MAYBMS_ASSIGN_OR_RETURN(PlanPtr k, ReorderPass(c));
        kids.push_back(std::move(k));
      }
      return RebuildWithChildren(plan, std::move(kids));
    }

    MAYBMS_ASSIGN_OR_RETURN(Schema orig_schema, SchemaOf(plan));
    std::vector<ChainLeaf> leaves;
    std::vector<ExprPtr> conjuncts;
    size_t total = 0;
    MAYBMS_RETURN_IF_ERROR(CollectChain(plan, &leaves, &conjuncts, &total));
    const size_t n = leaves.size();
    if (n < 2 || n > 60) return plan;  // bitmask bound; FROM lists are small
    // A two-input product with no cross conjunct gains nothing from a
    // swap (no hash build side, symmetric cost) — leave it alone.
    if (n == 2 && conjuncts.empty()) {
      std::vector<PlanPtr> kids;
      kids.reserve(plan->children().size());
      for (const auto& c : plan->children()) {
        MAYBMS_ASSIGN_OR_RETURN(PlanPtr k, ReorderPass(c));
        kids.push_back(std::move(k));
      }
      return RebuildWithChildren(plan, std::move(kids));
    }

    // Reorder within each leaf subtree, then estimate it.
    for (auto& lf : leaves) {
      MAYBMS_ASSIGN_OR_RETURN(lf.plan, ReorderPass(lf.plan));
      MAYBMS_ASSIGN_OR_RETURN(lf.est, Estimate(lf.plan));
    }

    // Flat distinct vector over the original leaf order, for conjunct
    // selectivities.
    PlanEst flat;
    flat.rows = 1.0;
    for (const auto& lf : leaves) {
      flat.rows *= std::max(lf.est.rows, 1.0);
      flat.distinct.insert(flat.distinct.end(), lf.est.distinct.begin(),
                           lf.est.distinct.end());
    }

    auto leaf_of = [&leaves](size_t col) {
      for (size_t i = 0; i < leaves.size(); ++i) {
        if (col >= leaves[i].offset &&
            col < leaves[i].offset + leaves[i].schema.size()) {
          return i;
        }
      }
      return leaves.size() - 1;
    };

    struct Conj {
      ExprPtr expr;
      uint64_t mask = 0;
      double sel = 1.0;
      bool attached = false;
    };
    std::vector<Conj> pool;
    pool.reserve(conjuncts.size());
    for (const auto& c : conjuncts) {
      Conj cj;
      cj.expr = c;
      std::vector<size_t> cols;
      c->CollectColumns(&cols);
      for (size_t col : cols) cj.mask |= 1ull << leaf_of(col);
      cj.sel = Selectivity(*c, flat);
      pool.push_back(std::move(cj));
    }

    // Greedy order: start with the cheapest pair, then repeatedly append
    // the leaf minimizing the estimated intermediate cardinality. Every
    // join keeps its estimated-larger input on the left, so the smaller
    // side lands on the right — the hash-join build side.
    auto avail_sel = [&pool](uint64_t mask) {
      double s = 1.0;
      for (const auto& cj : pool) {
        if (!cj.attached && (cj.mask & ~mask) == 0) s *= cj.sel;
      }
      return s;
    };
    std::vector<size_t> order;
    order.reserve(n);
    {
      double best = -1.0;
      size_t bi = 0, bj = 1;
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          uint64_t m = (1ull << i) | (1ull << j);
          double cost = leaves[i].est.rows * leaves[j].est.rows *
                        avail_sel(m);
          if (best < 0 || cost < best) {
            best = cost;
            bi = i;
            bj = j;
          }
        }
      }
      // Build side: when a conjunct joins the pair, the member with
      // strictly fewer estimated rows goes right (the hash build side);
      // unconnected pairs keep their original relative order.
      bool connected = false;
      for (const auto& cj : pool) {
        if ((cj.mask & ~((1ull << bi) | (1ull << bj))) == 0 && cj.mask != 0) {
          connected = true;
          break;
        }
      }
      if (connected && leaves[bi].est.rows < leaves[bj].est.rows) {
        std::swap(bi, bj);
      }
      order.push_back(bi);
      order.push_back(bj);
    }
    uint64_t picked = (1ull << order[0]) | (1ull << order[1]);
    double cur_rows = leaves[order[0]].est.rows * leaves[order[1]].est.rows *
                      avail_sel(picked);
    while (order.size() < n) {
      double best = -1.0;
      size_t bk = 0;
      for (size_t k = 0; k < n; ++k) {
        if (picked & (1ull << k)) continue;
        double cost = cur_rows * std::max(leaves[k].est.rows, 0.0) *
                      avail_sel(picked | (1ull << k));
        if (best < 0 || cost < best) {
          best = cost;
          bk = k;
        }
      }
      order.push_back(bk);
      picked |= 1ull << bk;
      cur_rows = best;
    }

    // Column permutation (old flat position → new flat position) and the
    // schema of the rebuilt chain, mirroring SchemaOf of the new tree.
    std::vector<size_t> new_offset(n, 0);
    {
      size_t at = 0;
      for (size_t k = 0; k < n; ++k) {
        new_offset[order[k]] = at;
        at += leaves[order[k]].schema.size();
      }
    }
    std::vector<size_t> old2new(total);
    for (size_t i = 0; i < n; ++i) {
      for (size_t c = 0; c < leaves[i].schema.size(); ++c) {
        old2new[leaves[i].offset + c] = new_offset[i] + c;
      }
    }
    Schema new_schema = leaves[order[0]].schema;
    for (size_t k = 1; k < n; ++k) {
      new_schema = Schema::Concat(new_schema, leaves[order[k]].schema,
                                  DeriveName(leaves[order[k]].plan));
    }

    // Left-deep rebuild; each conjunct attaches at the first join where
    // all its columns are available.
    auto remap = [&](const ExprPtr& c) {
      return MapColumns(
          c, [&old2new](size_t i) { return old2new[i]; }, &new_schema);
    };
    PlanPtr acc = leaves[order[0]].plan;
    uint64_t pm = 1ull << order[0];
    for (size_t k = 1; k < n; ++k) {
      pm |= 1ull << order[k];
      std::vector<ExprPtr> here;
      for (auto& cj : pool) {
        if (!cj.attached && (cj.mask & ~pm) == 0) {
          cj.attached = true;
          here.push_back(remap(cj.expr));
        }
      }
      if (here.empty()) {
        acc = Plan::Product(acc, leaves[order[k]].plan);
      } else {
        acc = Plan::Join(acc, leaves[order[k]].plan, CombineConjuncts(here));
      }
    }

    // Compensating projection restoring the original column order (and
    // names), so the rewrite is transparent to everything above.
    bool identity = true;
    for (size_t i = 0; i < total; ++i) {
      if (old2new[i] != i) {
        identity = false;
        break;
      }
    }
    if (!identity) {
      std::vector<ProjectItem> items;
      items.reserve(total);
      for (size_t i = 0; i < total; ++i) {
        items.push_back({Expr::ColumnIdx(old2new[i],
                                         new_schema.attr(old2new[i]).name),
                         orig_schema.attr(i).name});
      }
      acc = Plan::Project(acc, std::move(items));
    }
    return acc;
  }

  // --- projection pruning --------------------------------------------------

  static ExprPtr SubstituteColumns(const ExprPtr& e,
                                   const std::vector<ExprPtr>& subs) {
    if (e->kind() == ExprKind::kColumn) {
      return e->column_index() < subs.size() ? subs[e->column_index()] : e;
    }
    if (e->kind() == ExprKind::kConst) return e;
    std::vector<ExprPtr> kids;
    kids.reserve(e->children().size());
    for (const auto& c : e->children()) {
      kids.push_back(SubstituteColumns(c, subs));
    }
    return RebuildExpr(e, kids);
  }

  /// π ∘ π composes row-wise (bag-exact): outer column references are
  /// substituted by the inner items. Collapses the compensating
  /// projections of the join reorderer into the query's own projection,
  /// so pruning can see through them.
  Result<PlanPtr> MergeAdjacentProjects(const PlanPtr& plan) {
    const PlanPtr& inner = plan->input();
    MAYBMS_ASSIGN_OR_RETURN(Schema mid, SchemaOf(inner));
    MAYBMS_ASSIGN_OR_RETURN(Schema in, SchemaOf(inner->input()));
    std::vector<ExprPtr> inner_bound;
    inner_bound.reserve(inner->project_items().size());
    for (const auto& item : inner->project_items()) {
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr b, item.expr->BindAgainst(in));
      inner_bound.push_back(std::move(b));
    }
    std::vector<ProjectItem> merged;
    merged.reserve(plan->project_items().size());
    for (const auto& item : plan->project_items()) {
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr b, item.expr->BindAgainst(mid));
      merged.push_back({SubstituteColumns(b, inner_bound), item.name});
    }
    return Plan::Project(inner->input(), std::move(merged));
  }

  Result<PlanPtr> PrunePass(const PlanPtr& plan) {
    if (plan->kind() == PlanKind::kProject) {
      PlanPtr p = plan;
      while (p->kind() == PlanKind::kProject &&
             p->input()->kind() == PlanKind::kProject) {
        MAYBMS_ASSIGN_OR_RETURN(p, MergeAdjacentProjects(p));
      }
      MAYBMS_ASSIGN_OR_RETURN(PlanPtr pruned, PruneProject(p));
      if (pruned == nullptr && p != plan) pruned = p;
      if (pruned != nullptr) {
        std::vector<PlanPtr> kids;
        kids.reserve(pruned->children().size());
        for (const auto& c : pruned->children()) {
          MAYBMS_ASSIGN_OR_RETURN(PlanPtr k, PrunePass(c));
          kids.push_back(std::move(k));
        }
        return RebuildWithChildren(pruned, std::move(kids));
      }
    }
    std::vector<PlanPtr> kids;
    kids.reserve(plan->children().size());
    for (const auto& c : plan->children()) {
      MAYBMS_ASSIGN_OR_RETURN(PlanPtr k, PrunePass(c));
      kids.push_back(std::move(k));
    }
    return RebuildWithChildren(plan, std::move(kids));
  }

  /// π over (a spine of σ over) ⋈/× whose output is wider than the set
  /// of referenced columns: narrows both join inputs to the referenced
  /// columns, so the lifted operators marginalize unused slots before
  /// pairing tuples. Returns nullptr when the rule does not apply.
  Result<PlanPtr> PruneProject(const PlanPtr& plan) {
    MAYBMS_ASSIGN_OR_RETURN(Schema in_schema, SchemaOf(plan->input()));
    // Bind the projection items; walk the select spine (selects preserve
    // the schema, so every predicate binds against the same schema).
    std::vector<ExprPtr> items;
    for (const auto& item : plan->project_items()) {
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr b, item.expr->BindAgainst(in_schema));
      items.push_back(std::move(b));
    }
    std::vector<ExprPtr> spine;  // top-down select predicates
    PlanPtr cur = plan->input();
    while (cur->kind() == PlanKind::kSelect) {
      MAYBMS_ASSIGN_OR_RETURN(ExprPtr b,
                              cur->predicate()->BindAgainst(in_schema));
      spine.push_back(std::move(b));
      cur = cur->input();
    }
    if (cur->kind() != PlanKind::kProduct && cur->kind() != PlanKind::kJoin) {
      return PlanPtr(nullptr);
    }
    MAYBMS_ASSIGN_OR_RETURN(Schema lschema, SchemaOf(cur->left()));
    MAYBMS_ASSIGN_OR_RETURN(Schema rschema, SchemaOf(cur->right()));
    const size_t larity = lschema.size();
    ExprPtr join_pred;
    if (cur->kind() == PlanKind::kJoin && cur->predicate()) {
      MAYBMS_ASSIGN_OR_RETURN(join_pred,
                              cur->predicate()->BindAgainst(in_schema));
    }

    std::vector<size_t> needed;
    auto collect = [&needed](const ExprPtr& e) { e->CollectColumns(&needed); };
    for (const auto& e : items) collect(e);
    for (const auto& e : spine) collect(e);
    if (join_pred) collect(join_pred);
    std::sort(needed.begin(), needed.end());
    needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
    if (needed.size() >= in_schema.size()) return PlanPtr(nullptr);

    std::vector<size_t> keep_left, keep_right;  // child-local indexes
    for (size_t c : needed) {
      if (c < larity) {
        keep_left.push_back(c);
      } else {
        keep_right.push_back(c - larity);
      }
    }
    // A side that contributes no referenced column still multiplies
    // per-world multiplicities — keep one column to preserve them.
    if (keep_left.empty()) keep_left.push_back(0);
    if (keep_right.empty()) keep_right.push_back(0);
    if (keep_left.size() == larity && keep_right.size() == rschema.size()) {
      return PlanPtr(nullptr);
    }

    auto side_project = [](const PlanPtr& side, const Schema& schema,
                           const std::vector<size_t>& keep) {
      std::vector<ProjectItem> out;
      out.reserve(keep.size());
      for (size_t c : keep) {
        out.push_back({Expr::ColumnIdx(c, schema.attr(c).name),
                       schema.attr(c).name});
      }
      return Plan::Project(side, std::move(out));
    };
    PlanPtr new_left = keep_left.size() == larity
                           ? cur->left()
                           : side_project(cur->left(), lschema, keep_left);
    PlanPtr new_right = keep_right.size() == rschema.size()
                            ? cur->right()
                            : side_project(cur->right(), rschema, keep_right);

    // old concat position → new concat position.
    std::vector<size_t> old2new(in_schema.size(), SIZE_MAX);
    for (size_t p = 0; p < keep_left.size(); ++p) old2new[keep_left[p]] = p;
    for (size_t p = 0; p < keep_right.size(); ++p) {
      old2new[larity + keep_right[p]] = keep_left.size() + p;
    }
    MAYBMS_ASSIGN_OR_RETURN(Schema lp, SchemaOf(new_left));
    MAYBMS_ASSIGN_OR_RETURN(Schema rp, SchemaOf(new_right));
    Schema new_schema = Schema::Concat(lp, rp, DeriveName(new_right));
    auto remap = [&](const ExprPtr& e) {
      return MapColumns(
          e, [&old2new](size_t i) { return old2new[i]; }, &new_schema);
    };

    PlanPtr rebuilt =
        join_pred ? Plan::Join(new_left, new_right, remap(join_pred))
                  : (cur->kind() == PlanKind::kJoin
                         ? Plan::Join(new_left, new_right, nullptr)
                         : Plan::Product(new_left, new_right));
    for (size_t i = spine.size(); i-- > 0;) {
      rebuilt = Plan::Select(rebuilt, remap(spine[i]));
    }
    std::vector<ProjectItem> new_items;
    new_items.reserve(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      new_items.push_back({remap(items[i]), plan->project_items()[i].name});
    }
    return Plan::Project(rebuilt, std::move(new_items));
  }

  const WsdDb& db_;
  OptimizerOptions options_;
  std::unordered_map<const Plan*, PlanEst> est_cache_;
  std::vector<PlanPtr> est_keepalive_;
  std::unordered_map<std::string, PlanEst> scan_cache_;
};

}  // namespace

Result<PlanPtr> Optimize(const PlanPtr& plan, const WsdDb& db,
                         const OptimizerOptions& options) {
  if (!options.enable) return plan;
  Optimizer opt(db, options);
  return opt.Run(plan);
}

Result<Schema> PlanSchema(const PlanPtr& plan, const WsdDb& db) {
  Optimizer opt(db, OptimizerOptions{});
  return opt.SchemaOf(plan);
}

Result<double> EstimateRows(const PlanPtr& plan, const WsdDb& db) {
  Optimizer opt(db, OptimizerOptions{});
  MAYBMS_ASSIGN_OR_RETURN(PlanEst est, opt.Estimate(plan));
  return est.rows;
}

Result<std::string> ExplainPlan(const PlanPtr& plan, const WsdDb& db) {
  Optimizer opt(db, OptimizerOptions{});
  return opt.Annotate(plan, 0);
}

}  // namespace sql
}  // namespace maybms
