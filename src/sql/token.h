// Token stream for the MayBMS query language.
#ifndef MAYBMS_SQL_TOKEN_H_
#define MAYBMS_SQL_TOKEN_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace maybms {

enum class TokenKind : uint8_t {
  kIdent,    ///< bare or dotted identifier (case preserved)
  kString,   ///< 'single quoted'
  kInt,
  kFloat,
  kSymbol,   ///< punctuation / operator, text() holds it (e.g. "<=", "(")
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t offset = 0;  ///< byte offset in the input, for error messages

  bool IsSymbol(const char* s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
  /// Case-insensitive keyword match for identifiers.
  bool IsKeyword(const char* kw) const;
};

/// Tokenizes `sql`; the result always ends with a kEnd token.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace maybms

#endif  // MAYBMS_SQL_TOKEN_H_
