#include "sql/planner.h"

#include "common/string_util.h"

namespace maybms {
namespace sql {

namespace {

// A scan, renaming every column to "alias.col" when an alias is given.
Result<PlanPtr> PlanTableRef(const TableRef& ref, const WsdDb& db) {
  MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* rel, db.GetRelation(ref.table));
  PlanPtr scan = Plan::Scan(ref.table);
  if (ref.alias.empty()) return scan;
  std::vector<ProjectItem> items;
  items.reserve(rel->schema().size());
  for (size_t c = 0; c < rel->schema().size(); ++c) {
    const std::string& col = rel->schema().attr(c).name;
    items.push_back({Expr::Column(col), ref.alias + "." + col});
  }
  return Plan::Project(scan, std::move(items));
}

}  // namespace

Result<PlannedQuery> PlanSelect(const SelectStmt& stmt, const WsdDb& db) {
  PlannedQuery out;
  out.mode = stmt.mode;
  if (stmt.from.empty()) {
    return Status::ParseError("SELECT requires a FROM clause");
  }

  // FROM chain: left-deep products.
  MAYBMS_ASSIGN_OR_RETURN(PlanPtr plan, PlanTableRef(stmt.from[0], db));
  for (size_t i = 1; i < stmt.from.size(); ++i) {
    MAYBMS_ASSIGN_OR_RETURN(PlanPtr right, PlanTableRef(stmt.from[i], db));
    plan = Plan::Product(plan, right);
  }

  if (stmt.where) plan = Plan::Select(plan, stmt.where);

  // Select list.
  bool has_star = false;
  size_t n_prob = 0, n_ecount = 0, n_esum = 0, n_approx = 0;
  std::vector<ProjectItem> items;
  for (const auto& item : stmt.items) {
    switch (item.kind) {
      case SelectItem::Kind::kStar:
        has_star = true;
        break;
      case SelectItem::Kind::kProb:
        ++n_prob;
        if (!item.alias.empty()) out.prob_alias = item.alias;
        break;
      case SelectItem::Kind::kApproxConf:
        ++n_approx;
        out.approx_eps = item.approx_eps;
        out.approx_delta = item.approx_delta;
        if (!item.alias.empty()) out.prob_alias = item.alias;
        break;
      case SelectItem::Kind::kEcount:
        ++n_ecount;
        break;
      case SelectItem::Kind::kEsum:
        ++n_esum;
        out.esum_column = item.expr->column_name();
        break;
      case SelectItem::Kind::kExpr:
        items.push_back({item.expr, item.alias});
        break;
    }
  }
  if (n_prob > 1 || n_ecount > 1 || n_esum > 1 || n_approx > 1) {
    return Status::ParseError(
        "PROB()/ECOUNT()/ESUM()/APPROX CONF() may appear at most once");
  }
  if (n_prob > 0 && n_approx > 0) {
    return Status::ParseError(
        "PROB() and APPROX CONF() cannot be combined");
  }
  if ((n_ecount > 0 || n_esum > 0) &&
      (n_prob > 0 || n_approx > 0 || has_star || !items.empty() ||
       n_ecount + n_esum > 1)) {
    return Status::ParseError(
        "ECOUNT()/ESUM() must be the only select item");
  }
  if (has_star && !items.empty()) {
    return Status::ParseError("'*' cannot be combined with other items");
  }
  out.wants_prob = n_prob > 0;
  out.wants_ecount = n_ecount > 0;
  out.wants_esum = n_esum > 0;
  out.wants_approx = n_approx > 0;

  if (!items.empty()) {
    plan = Plan::Project(plan, std::move(items));
  } else if ((out.wants_prob || out.wants_approx) && !has_star) {
    // "SELECT PROB() FROM ... WHERE ..." asks for the probability that
    // the answer is non-empty: project onto zero columns, so the only
    // possible answer vector is the empty tuple and its confidence is
    // P(some qualifying tuple exists).
    plan = Plan::Project(plan, {});
  }
  if (stmt.distinct) plan = Plan::Distinct(plan);
  if (!stmt.order_by.empty()) {
    std::vector<std::string> cols;
    std::vector<bool> desc;
    for (const auto& o : stmt.order_by) {
      cols.push_back(o.column);
      desc.push_back(o.descending);
    }
    plan = Plan::Sort(plan, std::move(cols), std::move(desc));
  }

  if (stmt.compound != SelectStmt::Compound::kNone) {
    MAYBMS_ASSIGN_OR_RETURN(PlannedQuery rhs, PlanSelect(*stmt.rhs, db));
    if (rhs.wants_prob || rhs.wants_ecount || rhs.wants_approx) {
      return Status::ParseError(
          "PROB()/ECOUNT()/APPROX CONF() are not allowed inside compound "
          "operands");
    }
    plan = stmt.compound == SelectStmt::Compound::kUnion
               ? Plan::Union(plan, rhs.plan)
               : Plan::Difference(plan, rhs.plan);
  }
  out.plan = plan;
  return out;
}

}  // namespace sql
}  // namespace maybms
