#include "sql/session.h"

#include <cmath>
#include <sstream>

#include "chase/enforce.h"
#include "common/hash.h"
#include "common/string_util.h"
#include "core/builder.h"
#include "core/repair.h"
#include "core/confidence.h"
#include "core/lifted_executor.h"
#include "core/serialize.h"
#include "sql/optimizer.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "worlds/enumerate.h"

namespace maybms {
namespace sql {

namespace {

// The SET / SHOW SETTINGS knob registry: dotted leaf name → typed
// get/set over the SessionOptions aggregate. Sorted by name; SHOW
// SETTINGS lists in this order. The ε/δ of APPROX CONF are per-query
// (not knobs), and conf.cache / approx.cache are wired internally.
struct Knob {
  const char* name;
  std::string (*get)(const SessionOptions&);
  Status (*set)(SessionOptions*, const Value&);
};

Status ExpectBool(const Value& v, bool* out) {
  if (v.is_bool()) {
    *out = v.as_bool();
    return Status::OK();
  }
  if (v.is_int()) {
    *out = v.as_int() != 0;
    return Status::OK();
  }
  return Status::InvalidArgument("expected a boolean value");
}

Status ExpectCount(const Value& v, size_t* out) {
  if (v.is_int() && v.as_int() >= 0) {
    *out = static_cast<size_t>(v.as_int());
    return Status::OK();
  }
  return Status::InvalidArgument("expected a non-negative integer");
}

Status ExpectSeed(const Value& v, uint64_t* out) {
  if (v.is_int() && v.as_int() >= 0) {
    *out = static_cast<uint64_t>(v.as_int());
    return Status::OK();
  }
  return Status::InvalidArgument("expected a non-negative integer");
}

Status ExpectDouble(const Value& v, double* out) {
  if (v.is_numeric()) {
    *out = v.NumericValue();
    return Status::OK();
  }
  return Status::InvalidArgument("expected a number");
}

std::string FormatBoolKnob(bool b) { return b ? "true" : "false"; }

#define MAYBMS_KNOB(NAME, FIELD, FMT, EXPECT)                      \
  Knob {                                                           \
    NAME, [](const SessionOptions& o) { return FMT(o.FIELD); },    \
        [](SessionOptions* o, const Value& v) {                    \
          return EXPECT(v, &o->FIELD);                             \
        }                                                          \
  }
#define MAYBMS_BOOL_KNOB(NAME, FIELD) \
  MAYBMS_KNOB(NAME, FIELD, FormatBoolKnob, ExpectBool)
#define MAYBMS_COUNT_KNOB(NAME, FIELD)                                       \
  MAYBMS_KNOB(                                                               \
      NAME, FIELD, [](size_t x) { return StrFormat("%zu", x); }, ExpectCount)

const Knob kKnobs[] = {
    MAYBMS_COUNT_KNOB("approx.enum_chunk", approx.enum_chunk),
    MAYBMS_COUNT_KNOB("approx.exact_state_limit", approx.exact_state_limit),
    MAYBMS_BOOL_KNOB("approx.factorize_clusters", approx.factorize_clusters),
    MAYBMS_COUNT_KNOB("approx.fixed_samples", approx.fixed_samples),
    MAYBMS_COUNT_KNOB("approx.max_enum_states", approx.max_enum_states),
    MAYBMS_COUNT_KNOB("approx.max_samples", approx.max_samples),
    MAYBMS_BOOL_KNOB("approx.member_marginals", approx.member_marginals),
    MAYBMS_COUNT_KNOB("approx.num_threads", approx.num_threads),
    MAYBMS_COUNT_KNOB("approx.sample_chunk", approx.sample_chunk),
    MAYBMS_BOOL_KNOB("approx.sampling_only", approx.sampling_only),
    MAYBMS_KNOB(
        "approx.seed", approx.seed,
        [](uint64_t x) {
          return StrFormat("%llu", static_cast<unsigned long long>(x));
        },
        ExpectSeed),
    MAYBMS_KNOB(
        "conf.eps", conf.eps, [](double x) { return StrFormat("%g", x); },
        ExpectDouble),
    MAYBMS_BOOL_KNOB("conf.factorize_clusters", conf.factorize_clusters),
    MAYBMS_COUNT_KNOB("conf.max_cluster_states", conf.max_cluster_states),
    MAYBMS_COUNT_KNOB("conf.num_threads", conf.num_threads),
    MAYBMS_COUNT_KNOB("durability.auto_checkpoint_records",
                      durability.auto_checkpoint_records),
    MAYBMS_BOOL_KNOB("durability.wal_enabled", durability.wal_enabled),
    MAYBMS_BOOL_KNOB("exec.compile_expressions", exec.compile_expressions),
    MAYBMS_COUNT_KNOB("exec.num_threads", exec.num_threads),
    MAYBMS_COUNT_KNOB("exec.parallel_row_threshold",
                      exec.parallel_row_threshold),
    MAYBMS_BOOL_KNOB("materialize_conf", materialize_conf),
    MAYBMS_COUNT_KNOB("materialize_conf_capacity", materialize_conf_capacity),
    MAYBMS_BOOL_KNOB("optimizer.enable", optimizer.enable),
    MAYBMS_BOOL_KNOB("optimizer.fold_constants", optimizer.fold_constants),
    MAYBMS_BOOL_KNOB("optimizer.prune_projections",
                     optimizer.prune_projections),
    MAYBMS_BOOL_KNOB("optimizer.push_predicates", optimizer.push_predicates),
    MAYBMS_BOOL_KNOB("optimizer.reorder_joins", optimizer.reorder_joins),
};

#undef MAYBMS_COUNT_KNOB
#undef MAYBMS_BOOL_KNOB
#undef MAYBMS_KNOB

const Knob* FindKnob(const std::string& name) {
  const std::string lower = ToLower(name);
  for (const Knob& k : kKnobs) {
    if (lower == k.name) return &k;
  }
  return nullptr;
}

}  // namespace

Status Session::SetOption(const std::string& name, const Value& value) {
  const Knob* knob = FindKnob(name);
  if (knob == nullptr) {
    return Status::InvalidArgument(
        StrFormat("unknown setting '%s' (SHOW SETTINGS lists all knobs)",
                  name.c_str()));
  }
  Status st = knob->set(&options_, value);
  if (!st.ok()) {
    return Status::InvalidArgument(StrFormat("SET %s: %s", knob->name,
                                             st.message().c_str()));
  }
  return Status::OK();
}

uint64_t Session::SettingsFingerprint() const {
  std::string flat;
  for (const Knob& k : kKnobs) {
    flat += k.name;
    flat += '=';
    flat += k.get(options_);
    flat += ';';
  }
  return HashString(flat);
}

MaterializedConf* Session::conf_cache() {
  if (!options_.materialize_conf) return nullptr;
  const size_t cap = options_.materialize_conf_capacity;
  if (!conf_cache_ || conf_cache_capacity_ != cap) {
    conf_cache_ = std::make_unique<MaterializedConf>(cap);
    conf_cache_capacity_ = cap;
  }
  return conf_cache_.get();
}

std::string StatementResult::ToDisplayString(size_t max_rows) const {
  switch (kind) {
    case Kind::kMessage:
      return message;
    case Kind::kTable:
      return table.ToString(max_rows);
    case Kind::kWorldSet: {
      std::string out = world_set.ToString();
      out += StrFormat("(world-set: 2^%.4g choice combinations)\n",
                       world_set.Log2WorldCount());
      return out;
    }
  }
  return "";
}

Result<StatementResult> Session::Execute(const std::string& statement) {
  MAYBMS_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(statement));
  return ExecuteParsed(stmt);
}

Result<std::vector<StatementResult>> Session::ExecuteScript(
    const std::string& script) {
  MAYBMS_ASSIGN_OR_RETURN(std::vector<Statement> stmts, ParseScript(script));
  std::vector<StatementResult> out;
  out.reserve(stmts.size());
  for (const auto& stmt : stmts) {
    MAYBMS_ASSIGN_OR_RETURN(StatementResult r, ExecuteParsed(stmt));
    out.push_back(std::move(r));
  }
  return out;
}

Status Session::EnsureResident() {
  if (!mapped_) return Status::OK();
  MAYBMS_ASSIGN_OR_RETURN(WsdDb full, mapped_->MaterializeAll());
  db_ = std::move(full);
  mapped_.reset();
  return Status::OK();
}

bool Session::IsLoggedKind(Statement::Kind kind) {
  switch (kind) {
    case Statement::Kind::kCreateTable:
    case Statement::Kind::kDropTable:
    case Statement::Kind::kInsert:
    case Statement::Kind::kEnforce:
    case Statement::Kind::kRepair:
    case Statement::Kind::kDelete:
      return true;
    default:
      return false;
  }
}

Result<uint64_t> Session::WriteSnapshot(const std::string& path,
                                        SnapshotFormat format,
                                        uint64_t* out_bytes) {
  MAYBMS_ASSIGN_OR_RETURN(std::string bytes, SerializeWsdDb(db_, format));
  MAYBMS_RETURN_IF_ERROR(AtomicWriteFile(env(), path, bytes));
  if (out_bytes != nullptr) *out_bytes = bytes.size();
  return wal::SnapshotFingerprint(bytes);
}

Status Session::Checkpoint() {
  if (!attach_) {
    return Status::InvalidArgument(
        "CHECKPOINT requires a durable attachment (SAVE DATABASE or "
        "LOAD DATABASE first)");
  }
  MAYBMS_RETURN_IF_ERROR(EnsureResident());
  // Snapshot first, log reset second. A crash between the two leaves the
  // new snapshot next to the old log; the fingerprint mismatch on the
  // next load discards that log instead of double-applying it.
  MAYBMS_ASSIGN_OR_RETURN(
      uint64_t fingerprint,
      WriteSnapshot(attach_->db_path, attach_->format, nullptr));
  attach_->writer.reset();
  MAYBMS_ASSIGN_OR_RETURN(
      wal::WalWriter writer,
      wal::WalWriter::Create(env(), attach_->wal_path, fingerprint,
                             /*base_lsn=*/1));
  attach_->writer.emplace(std::move(writer));
  return Status::OK();
}

size_t Session::ReplayWal(const std::vector<wal::WalRecord>& records) {
  replaying_ = true;
  size_t applied = 0;
  for (const wal::WalRecord& rec : records) {
    // Errors are deliberately dropped: a statement or batch that failed
    // (or half-applied, e.g. a multi-row INSERT hitting a type error on
    // its second row) when first executed does the same on replay — the
    // engine applies row-level mutations deterministically in record
    // order, so the recovered state matches the crashed one.
    if (rec.type == wal::RecordType::kDelta) {
      Result<DeltaBatch> batch = DeltaBatch::Deserialize(rec.payload);
      if (batch.ok() && db_.ApplyDelta(*batch).ok()) ++applied;
      continue;
    }
    Result<StatementResult> r = Execute(rec.payload);
    if (r.ok()) ++applied;
  }
  replaying_ = false;
  return applied;
}

Result<StatementResult> Session::ExecuteParsed(const Statement& stmt) {
  const bool log_it =
      !replaying_ && attach_.has_value() && IsLoggedKind(stmt.kind);
  if (log_it) {
    if (!attach_->writer) {
      return Status::Internal("durable attachment has no WAL writer");
    }
    if (stmt.source_text.empty()) {
      // Statements built by hand (not through the parser) carry no SQL
      // text and therefore cannot be replayed; refusing is safer than
      // silently leaving a hole in the log.
      return Status::InvalidArgument(
          "cannot log a statement without source text to the WAL; "
          "detach (checkpoint) or execute through the parser");
    }
    // Append + fsync BEFORE applying: once the statement acknowledges,
    // it is durable; if the append fails nothing was applied.
    MAYBMS_ASSIGN_OR_RETURN(
        uint64_t lsn,
        attach_->writer->Append(wal::RecordType::kStatement,
                                stmt.source_text));
    (void)lsn;
  }
  MAYBMS_ASSIGN_OR_RETURN(StatementResult result, ExecuteParsedImpl(stmt));
  if (log_it && options_.durability.auto_checkpoint_records > 0 &&
      attach_ && attach_->writer &&
      attach_->writer->record_count() >=
          options_.durability.auto_checkpoint_records) {
    Status st = Checkpoint();
    if (!st.ok()) {
      // Non-fatal: the statement itself is durable in the log; the
      // checkpoint retries on the next threshold crossing.
      result.message +=
          "\n(warning: auto-checkpoint failed: " + st.ToString() + ")";
    }
  }
  return result;
}

Result<StatementResult> Session::ExecuteParsedImpl(const Statement& stmt) {
  // SELECT and EXPLAIN run against the mapped snapshot directly (that is
  // the point of MAPPED); everything else mutates or fully reads the
  // catalog, so it first forces the snapshot resident.
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
    case Statement::Kind::kExplain:
    case Statement::Kind::kLoadDb:
    case Statement::Kind::kSet:  // settings never touch the catalog
      break;
    case Statement::Kind::kShow:
      if (stmt.show->what == ShowStmt::What::kTables ||
          stmt.show->what == ShowStmt::What::kSettings) {
        break;
      }
      MAYBMS_RETURN_IF_ERROR(EnsureResident());
      break;
    default:
      MAYBMS_RETURN_IF_ERROR(EnsureResident());
      break;
  }
  StatementResult result;
  switch (stmt.kind) {
    case Statement::Kind::kCreateTable: {
      MAYBMS_RETURN_IF_ERROR(db_.CreateRelation(stmt.create_table->name,
                                                stmt.create_table->schema));
      result.message =
          "created table " + stmt.create_table->name + " " +
          stmt.create_table->schema.ToString();
      return result;
    }
    case Statement::Kind::kDropTable: {
      MAYBMS_RETURN_IF_ERROR(db_.DropRelation(stmt.drop_table->name));
      result.message = "dropped table " + stmt.drop_table->name;
      return result;
    }
    case Statement::Kind::kInsert:
      return RunInsert(*stmt.insert);
    case Statement::Kind::kSelect:
      return RunSelect(*stmt.select);
    case Statement::Kind::kExplain: {
      MAYBMS_ASSIGN_OR_RETURN(PlannedQuery q,
                              PlanSelect(*stmt.explain->select, db_));
      MAYBMS_ASSIGN_OR_RETURN(PlanPtr optimized,
                              Optimize(q.plan, db_, options_.optimizer));
      MAYBMS_ASSIGN_OR_RETURN(std::string before, ExplainPlan(q.plan, db_));
      MAYBMS_ASSIGN_OR_RETURN(std::string after, ExplainPlan(optimized, db_));
      result.message = "plan:\n" + before + "\n\nplan (optimized):\n" + after;
      if (q.wants_prob) result.message += "\n→ PROB() via conf computation";
      if (q.wants_approx) {
        result.message += StrFormat(
            "\n→ APPROX CONF(ε=%g, δ=%g) via anytime per-cluster "
            "estimation (exact ≤ %zu states, else bracket/sample to ε/K)",
            q.approx_eps, q.approx_delta,
            options_.approx.exact_state_limit);
      }
      if (q.wants_ecount) result.message += "\n→ ECOUNT() via existence sums";
      if (q.wants_esum) {
        result.message +=
            "\n→ ESUM(" + q.esum_column + ") via expectation sums";
      }
      if (q.mode == SelectMode::kPossible)
        result.message += "\n→ possible answers";
      if (q.mode == SelectMode::kCertain)
        result.message += "\n→ certain answers";
      return result;
    }
    case Statement::Kind::kShow:
      return RunShow(*stmt.show);
    case Statement::Kind::kEnforce:
      return RunEnforce(*stmt.enforce);
    case Statement::Kind::kRepair: {
      DeltaBatch batch;
      batch.RepairKey(stmt.repair->table, stmt.repair->key,
                      stmt.repair->weight);
      MAYBMS_ASSIGN_OR_RETURN(DeltaEffects effects, db_.ApplyDelta(batch));
      StatementResult result;
      result.message = StrFormat(
          "repaired key (%s) in %s: %zu group(s), %zu conflicting, "
          "world count x 2^%.4g",
          Join(stmt.repair->key, ",").c_str(), stmt.repair->table.c_str(),
          effects.repair_groups, effects.repair_conflicting_groups,
          effects.repair_log2_worlds_added);
      return result;
    }
    case Statement::Kind::kSaveDb:
      return RunSaveDb(*stmt.save_db);
    case Statement::Kind::kLoadDb:
      return RunLoadDb(*stmt.load_db);
    case Statement::Kind::kCheckpoint: {
      MAYBMS_RETURN_IF_ERROR(Checkpoint());
      result.message = StrFormat("checkpointed to '%s' (log reset)",
                                 attach_->db_path.c_str());
      return result;
    }
    case Statement::Kind::kSet:
      return RunSet(*stmt.set);
    case Statement::Kind::kDelete:
      return RunDelete(*stmt.delete_stmt);
  }
  return Status::Internal("unreachable statement kind");
}

Result<StatementResult> Session::RunSaveDb(const SaveDbStmt& stmt) {
  SnapshotFormat format =
      stmt.binary ? SnapshotFormat::kBinary : SnapshotFormat::kText;
  // Saving to a new path supersedes any previous attachment; drop it
  // first so a failed save cannot leave a half-configured binding.
  attach_.reset();
  uint64_t bytes = 0;
  MAYBMS_ASSIGN_OR_RETURN(uint64_t fingerprint,
                          WriteSnapshot(stmt.path, format, &bytes));
  StatementResult result;
  result.message = StrFormat(
      "saved database to '%s' (%s format, %s)", stmt.path.c_str(),
      stmt.binary ? "binary" : "text", FormatBytes(bytes).c_str());
  if (options_.durability.wal_enabled) {
    DurableAttachment a;
    a.db_path = stmt.path;
    a.wal_path = wal::WalPathFor(stmt.path);
    a.format = format;
    MAYBMS_ASSIGN_OR_RETURN(
        wal::WalWriter writer,
        wal::WalWriter::Create(env(), a.wal_path, fingerprint,
                               /*base_lsn=*/1));
    a.writer.emplace(std::move(writer));
    attach_.emplace(std::move(a));
    result.message += StrFormat("; logging to '%s'",
                                attach_->wal_path.c_str());
  }
  return result;
}

Result<StatementResult> Session::RunLoadDb(const LoadDbStmt& stmt) {
  StatementResult result;
  const std::string wal_path = wal::WalPathFor(stmt.path);

  if (stmt.mapped) {
    MAYBMS_ASSIGN_OR_RETURN(MappedWsdDb mapped,
                            MappedWsdDb::Open(stmt.path, {}, env()));
    size_t pending_records = 0;
    if (options_.durability.wal_enabled) {
      const uint64_t fingerprint =
          wal::SnapshotFingerprint(mapped.snapshot_view());
      Result<wal::WalContents> contents = wal::ReadWal(env(), wal_path);
      if (contents.ok() && contents->usable &&
          contents->snapshot_fingerprint == fingerprint &&
          !contents->records.empty()) {
        // The log is newer than the snapshot: a mapped open cannot apply
        // it lazily, so materialize, replay, checkpoint (folding the log
        // into the snapshot) and re-map the now-current file.
        MAYBMS_ASSIGN_OR_RETURN(WsdDb full, mapped.MaterializeAll());
        pending_records = contents->records.size();
        WsdDb saved_db = std::move(db_);
        auto saved_mapped = std::move(mapped_);
        db_ = std::move(full);
        mapped_.reset();
        ReplayWal(contents->records);
        attach_.reset();
        uint64_t bytes = 0;
        Result<uint64_t> fp2 =
            WriteSnapshot(stmt.path, SnapshotFormat::kBinary, &bytes);
        Result<MappedWsdDb> remapped =
            fp2.ok() ? MappedWsdDb::Open(stmt.path, {}, env())
                     : Result<MappedWsdDb>(fp2.status());
        Result<wal::WalWriter> writer =
            remapped.ok() ? wal::WalWriter::Create(env(), wal_path, *fp2,
                                                   /*base_lsn=*/1)
                          : Result<wal::WalWriter>(remapped.status());
        if (!writer.ok()) {
          // Roll the catalog back so a failed LOAD leaves the session
          // untouched (the replayed snapshot may be half-written; its
          // stale log is ignored by the fingerprint check next time).
          db_ = std::move(saved_db);
          mapped_ = std::move(saved_mapped);
          return writer.status();
        }
        mapped = std::move(*remapped);
        DurableAttachment a;
        a.db_path = stmt.path;
        a.wal_path = wal_path;
        a.format = SnapshotFormat::kBinary;
        a.writer.emplace(std::move(*writer));
        attach_.emplace(std::move(a));
      } else {
        MAYBMS_RETURN_IF_ERROR(AttachForLoad(stmt.path, wal_path, fingerprint,
                                             SnapshotFormat::kBinary,
                                             contents));
      }
    }
    size_t shards = 0;
    for (const auto& part : mapped.partitions()) {
      shards += part.shards.size();
    }
    // The resident catalog becomes the schema-only skeleton so that
    // SHOW TABLES / planning keep working without touching data.
    db_ = mapped.skeleton();
    result.message = StrFormat(
        "mapped database from '%s': %zu relation(s), %zu shard(s), "
        "%zu component(s), %s on disk",
        stmt.path.c_str(), db_.relations().size(), shards,
        mapped.num_components(), FormatBytes(mapped.snapshot_bytes()).c_str());
    if (pending_records > 0) {
      result.message += StrFormat("; recovered %zu statement(s) from '%s'",
                                  pending_records, wal_path.c_str());
    }
    mapped_.emplace(std::move(mapped));
    return result;
  }

  if (!options_.durability.wal_enabled) {
    MAYBMS_ASSIGN_OR_RETURN(WsdDb loaded, LoadWsdDb(stmt.path, env()));
    // Swap the session catalog only after a fully validated load, so a
    // failed LOAD DATABASE leaves the current database untouched.
    db_ = std::move(loaded);
    mapped_.reset();
    attach_.reset();
    result.message = StrFormat(
        "loaded database from '%s': %zu relation(s), %zu component(s), "
        "2^%.4g choice combinations",
        stmt.path.c_str(), db_.relations().size(), db_.NumLiveComponents(),
        db_.Log2WorldCount());
    return result;
  }

  // Durable eager load: snapshot bytes are read once and reused for both
  // decoding and the WAL fingerprint; all fallible I/O (snapshot read,
  // log scan, torn-tail repair, log reset) happens before the catalog
  // swap, so a failed LOAD leaves the session untouched.
  MAYBMS_ASSIGN_OR_RETURN(std::string bytes,
                          env()->ReadFileToString(stmt.path));
  const uint64_t fingerprint = wal::SnapshotFingerprint(bytes);
  // Future checkpoints rewrite the snapshot in the format it holds now.
  SnapshotFormat format = SnapshotFormat::kBinary;
  if (bytes.rfind("MAYBMS-WSD 1", 0) == 0) format = SnapshotFormat::kText;
  if (bytes.rfind("MAYBMS-WSD 2", 0) == 0) format = SnapshotFormat::kBinaryV2;
  WsdDb loaded;
  {
    std::istringstream in(std::move(bytes));
    MAYBMS_ASSIGN_OR_RETURN(loaded, ReadWsdDb(in));
  }
  Result<wal::WalContents> contents = wal::ReadWal(env(), wal_path);
  std::vector<wal::WalRecord> to_replay;
  if (contents.ok() && contents->usable &&
      contents->snapshot_fingerprint == fingerprint) {
    // Copied, not moved: AttachForLoad still needs the record count to
    // continue the log at the right LSN.
    to_replay = contents->records;
  }
  attach_.reset();
  MAYBMS_RETURN_IF_ERROR(
      AttachForLoad(stmt.path, wal_path, fingerprint, format, contents));

  db_ = std::move(loaded);
  mapped_.reset();
  if (!to_replay.empty()) ReplayWal(to_replay);

  result.message = StrFormat(
      "loaded database from '%s': %zu relation(s), %zu component(s), "
      "2^%.4g choice combinations",
      stmt.path.c_str(), db_.relations().size(), db_.NumLiveComponents(),
      db_.Log2WorldCount());
  if (!to_replay.empty()) {
    result.message += StrFormat("; recovered %zu statement(s) from '%s'",
                                to_replay.size(), wal_path.c_str());
  }
  return result;
}

Status Session::AttachForLoad(const std::string& db_path,
                              const std::string& wal_path,
                              uint64_t fingerprint, SnapshotFormat format,
                              const Result<wal::WalContents>& contents) {
  DurableAttachment a;
  a.db_path = db_path;
  a.wal_path = wal_path;
  a.format = format;
  if (contents.ok() && contents->usable &&
      contents->snapshot_fingerprint == fingerprint) {
    // Continue the existing log (repairing any torn tail) so replayed
    // records stay durable until the next checkpoint folds them in.
    MAYBMS_ASSIGN_OR_RETURN(
        wal::WalWriter writer,
        wal::WalWriter::OpenForAppend(env(), wal_path, *contents));
    a.writer.emplace(std::move(writer));
  } else if (contents.ok() ||
             contents.status().code() == StatusCode::kNotFound) {
    // Missing, corrupt, or bound to a different snapshot generation:
    // start a fresh log for this snapshot.
    MAYBMS_ASSIGN_OR_RETURN(
        wal::WalWriter writer,
        wal::WalWriter::Create(env(), wal_path, fingerprint, /*base_lsn=*/1));
    a.writer.emplace(std::move(writer));
  } else {
    // A hard I/O error scanning the log: without it durability cannot be
    // promised, so fail the load rather than run half-protected.
    return contents.status();
  }
  attach_.emplace(std::move(a));
  return Status::OK();
}

Result<StatementResult> Session::RunInsert(const InsertStmt& stmt) {
  MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* rel, db_.GetRelation(stmt.table));
  (void)rel;
  // One delta batch per statement: row-at-a-time application (and its
  // deterministic half-apply on a mid-statement error) is preserved by
  // ApplyDelta's fail-fast op loop.
  DeltaBatch batch;
  for (const auto& row : stmt.rows) {
    std::vector<CellSpec> cells;
    cells.reserve(row.size());
    for (const auto& cell : row) {
      if (!cell.is_orset) {
        cells.push_back(CellSpec::Certain(cell.value));
        continue;
      }
      if (cell.probs.empty()) {
        cells.push_back(CellSpec::UniformOrSet(cell.alternatives));
      } else {
        std::vector<Alternative> alts;
        for (size_t i = 0; i < cell.alternatives.size(); ++i) {
          alts.push_back({cell.alternatives[i], cell.probs[i]});
        }
        cells.push_back(CellSpec::OrSet(std::move(alts)));
      }
    }
    batch.Insert(stmt.table, std::move(cells));
  }
  MAYBMS_ASSIGN_OR_RETURN(DeltaEffects effects, db_.ApplyDelta(batch));
  StatementResult result;
  result.message = StrFormat("inserted %zu tuple(s) into %s",
                             effects.tuples_inserted, stmt.table.c_str());
  return result;
}

Result<StatementResult> Session::RunSelect(const SelectStmt& stmt) {
  MAYBMS_ASSIGN_OR_RETURN(PlannedQuery q, PlanSelect(stmt, db_));
  MAYBMS_ASSIGN_OR_RETURN(PlanPtr plan,
                          Optimize(q.plan, db_, options_.optimizer));
  LiftedExecOptions lifted_opts;
  lifted_opts.eval = options_.exec;
  // Per-query copy of the confidence options with the session's
  // content-keyed cache attached: repeated queries over mostly-unchanged
  // world sets recompute only the clusters a delta dirtied.
  ConfidenceOptions conf_opts = options_.conf;
  conf_opts.cache = conf_cache();
  WsdDb answer;
  if (mapped_) {
    // Materialize only the shards/components the optimized plan can
    // touch, then run the lifted pipeline over that scratch database.
    MAYBMS_ASSIGN_OR_RETURN(WsdDb scratch, mapped_->MaterializeForPlan(*plan));
    MAYBMS_ASSIGN_OR_RETURN(answer,
                            ExecuteLifted(plan, scratch, lifted_opts));
  } else {
    MAYBMS_ASSIGN_OR_RETURN(answer, ExecuteLifted(plan, db_, lifted_opts));
  }
  StatementResult result;
  if (q.wants_ecount) {
    MAYBMS_ASSIGN_OR_RETURN(double ec,
                            ExpectedCount(answer, "result", conf_opts));
    Relation table("", Schema({{"ecount", ValueType::kDouble}}));
    table.AppendUnchecked({Value::Double(ec)});
    result.kind = StatementResult::Kind::kTable;
    result.table = std::move(table);
    return result;
  }
  if (q.wants_esum) {
    MAYBMS_ASSIGN_OR_RETURN(double es,
                            ExpectedSum(answer, "result", q.esum_column,
                                        conf_opts));
    Relation table("", Schema({{"esum", ValueType::kDouble}}));
    table.AppendUnchecked({Value::Double(es)});
    result.kind = StatementResult::Kind::kTable;
    result.table = std::move(table);
    return result;
  }
  if (q.wants_approx) {
    ApproxOptions opts = options_.approx;
    opts.cache = conf_cache();
    opts.epsilon = q.approx_eps;
    opts.delta = q.approx_delta;
    ApproxConfStats stats;
    MAYBMS_ASSIGN_OR_RETURN(Relation conf,
                            ApproxConfTable(answer, "result", opts, &stats));
    // Rename the trailing estimate/interval columns to the alias.
    Schema s = conf.schema();
    std::vector<Attribute> attrs = s.attrs();
    const size_t n = attrs.size();
    attrs[n - 3].name = q.prob_alias;
    attrs[n - 2].name = q.prob_alias + "_lo";
    attrs[n - 1].name = q.prob_alias + "_hi";
    Relation renamed(conf.name(), Schema(attrs));
    for (const auto& row : conf.rows()) renamed.AppendUnchecked(row);
    result.kind = StatementResult::Kind::kTable;
    result.table = std::move(renamed);
    result.message = StrFormat(
        "approx conf(ε=%g, δ=%g): %zu cluster(s) — %zu exact, %zu bracket, "
        "%zu sampled; %llu sample(s), %llu state(s), max half-width %.4g",
        opts.epsilon, opts.delta, stats.clusters, stats.exact_clusters,
        stats.bracket_clusters, stats.sampled_clusters,
        static_cast<unsigned long long>(stats.total_samples),
        static_cast<unsigned long long>(stats.total_states),
        stats.max_half_width);
    return result;
  }
  if (q.wants_prob) {
    MAYBMS_ASSIGN_OR_RETURN(Relation conf,
                            ConfTable(answer, "result", conf_opts));
    // Rename the trailing conf column to the requested alias.
    Schema s = conf.schema();
    std::vector<Attribute> attrs = s.attrs();
    attrs.back().name = q.prob_alias;
    Relation renamed(conf.name(), Schema(attrs));
    for (const auto& row : conf.rows()) renamed.AppendUnchecked(row);
    result.kind = StatementResult::Kind::kTable;
    result.table = std::move(renamed);
    return result;
  }
  switch (q.mode) {
    case SelectMode::kPossible: {
      MAYBMS_ASSIGN_OR_RETURN(
          Relation t, PossibleTuples(answer, "result", conf_opts));
      result.kind = StatementResult::Kind::kTable;
      result.table = std::move(t);
      return result;
    }
    case SelectMode::kCertain: {
      MAYBMS_ASSIGN_OR_RETURN(
          Relation t, CertainTuples(answer, "result", conf_opts));
      result.kind = StatementResult::Kind::kTable;
      result.table = std::move(t);
      return result;
    }
    case SelectMode::kWorldSet:
      result.kind = StatementResult::Kind::kWorldSet;
      result.world_set = std::move(answer);
      return result;
  }
  return Status::Internal("unreachable select mode");
}

Result<StatementResult> Session::RunEnforce(const EnforceStmt& stmt) {
  Constraint c = [&] {
    switch (stmt.kind) {
      case EnforceStmt::Kind::kCheck:
        return Constraint::Domain(stmt.table, stmt.check);
      case EnforceStmt::Kind::kKey:
        return Constraint::Key(stmt.table, stmt.lhs);
      case EnforceStmt::Kind::kFd:
      default:
        return Constraint::FunctionalDependency(stmt.table, stmt.lhs,
                                                stmt.rhs);
    }
  }();
  const double log2_before = db_.Log2WorldCount();
  DeltaBatch batch;
  batch.Enforce(c);
  MAYBMS_ASSIGN_OR_RETURN(DeltaEffects effects, db_.ApplyDelta(batch));
  StatementResult result;
  result.message = StrFormat(
      "enforced %s: removed probability mass %.6g, %zu component row(s) "
      "deleted; log2(worlds) %.4g -> %.4g",
      c.ToString().c_str(), effects.enforce_removed_mass,
      effects.enforce_rows_removed, log2_before, db_.Log2WorldCount());
  return result;
}

Result<DeltaEffects> Session::ApplyDelta(const DeltaBatch& batch) {
  MAYBMS_RETURN_IF_ERROR(EnsureResident());
  const bool log_it = !replaying_ && attach_.has_value();
  if (log_it) {
    if (!attach_->writer) {
      return Status::Internal("durable attachment has no WAL writer");
    }
    // Serialize + append + fsync BEFORE applying, mirroring the
    // statement path: an acknowledged batch is durable; a failed append
    // applies nothing.
    MAYBMS_ASSIGN_OR_RETURN(std::string payload, batch.Serialize());
    MAYBMS_ASSIGN_OR_RETURN(
        uint64_t lsn,
        attach_->writer->Append(wal::RecordType::kDelta, payload));
    (void)lsn;
  }
  MAYBMS_ASSIGN_OR_RETURN(DeltaEffects effects, db_.ApplyDelta(batch));
  if (log_it && options_.durability.auto_checkpoint_records > 0 &&
      attach_ && attach_->writer &&
      attach_->writer->record_count() >=
          options_.durability.auto_checkpoint_records) {
    // Non-fatal, like the statement path: the batch is durable in the
    // log either way; a failed checkpoint retries on the next crossing.
    (void)Checkpoint();
  }
  return effects;
}

Result<StatementResult> Session::RunSet(const SetStmt& stmt) {
  MAYBMS_RETURN_IF_ERROR(SetOption(stmt.name, stmt.value));
  const Knob* knob = FindKnob(stmt.name);
  StatementResult result;
  result.message =
      StrFormat("set %s = %s", knob->name, knob->get(options_).c_str());
  return result;
}

Result<StatementResult> Session::RunDelete(const DeleteStmt& stmt) {
  MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* rel, db_.GetRelation(stmt.table));
  (void)rel;
  DeltaBatch batch;
  batch.EvictOldest(stmt.table, stmt.count);
  MAYBMS_ASSIGN_OR_RETURN(DeltaEffects effects, db_.ApplyDelta(batch));
  StatementResult result;
  result.message = StrFormat(
      "evicted %zu tuple(s) from %s (%zu component(s) collected)",
      effects.tuples_evicted, stmt.table.c_str(),
      effects.removed_components.size());
  return result;
}

Result<StatementResult> Session::RunShow(const ShowStmt& stmt) {
  StatementResult result;
  switch (stmt.what) {
    case ShowStmt::What::kTables: {
      std::string out;
      for (const auto& name : db_.RelationNames()) {
        const WsdRelation* rel = db_.GetRelation(name).value();
        out += rel->name() + " " + rel->schema().ToString() +
               StrFormat(" — %zu tuple template(s)\n", rel->NumTuples());
      }
      if (out.empty()) out = "(no tables)\n";
      result.message = std::move(out);
      return result;
    }
    case ShowStmt::What::kRelation: {
      MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* rel,
                              db_.GetRelation(stmt.relation));
      (void)rel;
      result.message = db_.ToString();
      return result;
    }
    case ShowStmt::What::kWorlds: {
      auto count = db_.WorldCountIfSmall(stmt.max_worlds);
      if (!count.has_value()) {
        result.message = StrFormat(
            "world-set too large to enumerate: 2^%.4g choice combinations\n",
            db_.Log2WorldCount());
        return result;
      }
      MAYBMS_ASSIGN_OR_RETURN(std::vector<World> worlds,
                              EnumerateWorlds(db_, stmt.max_worlds));
      auto merged = MergeEqualWorlds(std::move(worlds));
      std::string out =
          StrFormat("%zu distinct world(s):\n", merged.size());
      for (size_t i = 0; i < merged.size(); ++i) {
        out += StrFormat("--- world %zu (p = %.6g) ---\n", i + 1,
                         merged[i].prob);
        for (const auto& name : merged[i].catalog.Names()) {
          out += merged[i].catalog.Get(name).value()->ToString();
        }
      }
      result.message = std::move(out);
      return result;
    }
    case ShowStmt::What::kSettings: {
      Relation table("", Schema({{"setting", ValueType::kString},
                                 {"value", ValueType::kString}}));
      for (const Knob& k : kKnobs) {
        table.AppendUnchecked(
            {Value::String(k.name), Value::String(k.get(options_))});
      }
      result.kind = StatementResult::Kind::kTable;
      result.table = std::move(table);
      return result;
    }
  }
  return Status::Internal("unreachable show kind");
}

}  // namespace sql
}  // namespace maybms
