#include "sql/token.h"

#include <cctype>

#include "common/string_util.h"

namespace maybms {

bool Token::IsKeyword(const char* kw) const {
  return kind == TokenKind::kIdent && EqualsIgnoreCase(text, kw);
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  auto is_ident_start = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  auto is_ident_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token t;
    t.offset = i;
    if (is_ident_start(c)) {
      size_t start = i;
      while (i < n && is_ident_char(sql[i])) ++i;
      // Dotted identifiers (qualified column names, e.g. a.x).
      while (i + 1 < n && sql[i] == '.' && is_ident_start(sql[i + 1])) {
        ++i;
        while (i < n && is_ident_char(sql[i])) ++i;
      }
      t.kind = TokenKind::kIdent;
      t.text = sql.substr(start, i - start);
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool has_dot = false, has_exp = false;
      while (i < n) {
        char d = sql[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++i;
        } else if (d == '.' && !has_dot && !has_exp) {
          has_dot = true;
          ++i;
        } else if ((d == 'e' || d == 'E') && !has_exp && i + 1 < n) {
          has_exp = true;
          ++i;
          if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        } else {
          break;
        }
      }
      std::string text = sql.substr(start, i - start);
      if (has_dot || has_exp) {
        t.kind = TokenKind::kFloat;
        t.float_value = strtod(text.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kInt;
        t.int_value = strtoll(text.c_str(), nullptr, 10);
      }
      t.text = std::move(text);
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            text += '\'';
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          text += sql[i++];
        }
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %zu", t.offset));
      }
      t.kind = TokenKind::kString;
      t.text = std::move(text);
      out.push_back(std::move(t));
      continue;
    }
    // Multi-char symbols first.
    static const char* kTwoChar[] = {"<=", ">=", "<>", "!=", "->"};
    bool matched = false;
    for (const char* sym : kTwoChar) {
      if (c == sym[0] && i + 1 < n && sql[i + 1] == sym[1]) {
        t.kind = TokenKind::kSymbol;
        t.text = sym;
        i += 2;
        out.push_back(std::move(t));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kSingles = "()[]{},;*.=<>+-/:";
    if (kSingles.find(c) != std::string::npos) {
      t.kind = TokenKind::kSymbol;
      t.text = std::string(1, c);
      ++i;
      out.push_back(std::move(t));
      continue;
    }
    return Status::ParseError(
        StrFormat("unexpected character '%c' at offset %zu", c, i));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace maybms
