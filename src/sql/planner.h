// Lowers a parsed SELECT statement to a logical plan plus the
// probabilistic post-processing it requests (prob(), possible/certain,
// ecount()).
#ifndef MAYBMS_SQL_PLANNER_H_
#define MAYBMS_SQL_PLANNER_H_

#include "common/result.h"
#include "core/wsd.h"
#include "ra/plan.h"
#include "sql/ast.h"

namespace maybms {
namespace sql {

/// The relational plan plus the answer-mode flags of a query.
struct PlannedQuery {
  PlanPtr plan;
  SelectMode mode = SelectMode::kWorldSet;
  bool wants_prob = false;    ///< PROB() in the select list
  bool wants_ecount = false;  ///< ECOUNT() as the only select item
  bool wants_esum = false;    ///< ESUM(col) as the only select item
  bool wants_approx = false;  ///< APPROX CONF(ε, δ) in the select list
  double approx_eps = 0.01;   ///< APPROX CONF half-width target
  double approx_delta = 0.05; ///< APPROX CONF coverage failure probability
  std::string prob_alias = "prob";  ///< also names APPROX CONF's estimate
  std::string esum_column;    ///< output column ESUM aggregates over
};

/// Plans `stmt` against the relations of `db` (schemas are needed for
/// '*' expansion and alias renaming).
Result<PlannedQuery> PlanSelect(const SelectStmt& stmt, const WsdDb& db);

}  // namespace sql
}  // namespace maybms

#endif  // MAYBMS_SQL_PLANNER_H_
