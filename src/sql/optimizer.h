// Cost-based logical plan optimizer ("MayBMS rewrites and optimizes user
// queries into a sequence of relational queries on world-set
// decompositions" — the rewrites shrink the decomposition *before* the
// expensive product/join steps run).
//
// Rule-driven rewrite engine over ra/plan.h:
//   1. constant folding — constant subexpressions are evaluated once at
//      plan time (via the same Expr::Eval the executor uses, so folding
//      is a pure optimization: trees that would error stay unfolded);
//   2. predicate pushdown — WHERE conjuncts are split and pushed below
//      products/joins/unions/distincts and through pure-column
//      projections into per-relation selections; Select-over-Product
//      with cross-side conjuncts becomes Join (hash-join eligible);
//   3. join reordering — chains of products/joins are re-ordered
//      greedily by estimated cardinality, and each join's smaller input
//      is placed on the right (the hash-join build side); a compensating
//      projection restores the original column order;
//   4. projection pruning — join inputs are narrowed to the columns the
//      query actually references, so the lifted operators marginalize
//      unused component slots before pairing tuples.
//
// Cardinalities come from the statistics layer of the columnar store:
// template-tuple counts plus per-column distinct counts (certain cells
// counted directly, uncertain cells through the cached per-slot distinct
// counts of their components — see RelationStats / ComponentStats).
//
// The rewritten predicates are column-index-bound, so they stay valid
// regardless of later name disambiguation.
#ifndef MAYBMS_SQL_OPTIMIZER_H_
#define MAYBMS_SQL_OPTIMIZER_H_

#include <string>

#include "common/result.h"
#include "core/wsd.h"
#include "ra/plan.h"

namespace maybms {
namespace sql {

/// Knobs of the plan optimizer. Every rewrite rule has its own switch,
/// and `enable` turns the whole optimizer off (the differential fuzz
/// harness runs each plan both ways and compares distributions).
struct OptimizerOptions {
  bool enable = true;             ///< master switch: off = plan unchanged
  bool fold_constants = true;     ///< evaluate constant subexpressions
  bool push_predicates = true;    ///< split + push conjuncts below ×/⋈/∪/π/δ
  bool reorder_joins = true;      ///< cost-based join order + build side
  bool prune_projections = true;  ///< narrow join inputs to used columns
};

/// Rewrites `plan` under `options`; with default options all rules run.
Result<PlanPtr> Optimize(const PlanPtr& plan, const WsdDb& db,
                         const OptimizerOptions& options = {});

/// Output schema of a plan against the WSD catalog (mirrors
/// ra::OutputSchema, which works over certain catalogs).
Result<Schema> PlanSchema(const PlanPtr& plan, const WsdDb& db);

/// Estimated output cardinality of `plan` under the optimizer's cost
/// model (template tuples; exposed for EXPLAIN and tests).
Result<double> EstimateRows(const PlanPtr& plan, const WsdDb& db);

/// Multi-line plan rendering with the cost model's estimated
/// cardinality appended to every node ("Join (...)  [~12 rows]") — the
/// EXPLAIN form.
Result<std::string> ExplainPlan(const PlanPtr& plan, const WsdDb& db);

}  // namespace sql
}  // namespace maybms

#endif  // MAYBMS_SQL_OPTIMIZER_H_
