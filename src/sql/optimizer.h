// Logical plan optimizer: predicate pushdown and product-to-join
// conversion ("MayBMS rewrites and optimizes user queries into a sequence
// of relational queries on world-set decompositions" — these rewrites keep
// the per-tuple component merging of lifted selection small and let joins
// use the certain-key hash path).
#ifndef MAYBMS_SQL_OPTIMIZER_H_
#define MAYBMS_SQL_OPTIMIZER_H_

#include <map>
#include <string>

#include "common/result.h"
#include "core/wsd.h"
#include "ra/plan.h"

namespace maybms {
namespace sql {

/// Rewrites `plan`:
///   1. WHERE conjuncts are split and pushed below products/joins/unions
///      to the deepest input whose schema covers their columns;
///   2. Select-over-Product with cross-side conjuncts becomes Join.
/// The rewritten predicates are column-index-bound, so they stay valid
/// regardless of later name disambiguation.
Result<PlanPtr> Optimize(const PlanPtr& plan, const WsdDb& db);

/// Output schema of a plan against the WSD catalog (mirrors
/// ra::OutputSchema, which works over certain catalogs).
Result<Schema> PlanSchema(const PlanPtr& plan, const WsdDb& db);

}  // namespace sql
}  // namespace maybms

#endif  // MAYBMS_SQL_OPTIMIZER_H_
