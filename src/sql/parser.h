// Recursive-descent parser for the MayBMS query language.
#ifndef MAYBMS_SQL_PARSER_H_
#define MAYBMS_SQL_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace maybms {
namespace sql {

/// Parses a single statement (a trailing ';' is allowed).
Result<Statement> ParseStatement(const std::string& input);

/// Splits `input` on top-level ';' and parses each statement.
Result<std::vector<Statement>> ParseScript(const std::string& input);

}  // namespace sql
}  // namespace maybms

#endif  // MAYBMS_SQL_PARSER_H_
