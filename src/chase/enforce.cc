#include "chase/enforce.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/lifted_internal.h"
#include "core/normalize.h"

namespace maybms {

namespace {

using lifted_internal::BottomGatingIndex;
using lifted_internal::BuildBottomGatingIndex;
using lifted_internal::CellsPossiblyEqual;
using lifted_internal::LookupBottomGating;
using lifted_internal::MergePlanner;

// Accumulates "bad row" verdicts per merged component, then removes them
// and renormalizes — the conditioning step shared by all constraint kinds.
class Conditioner {
 public:
  explicit Conditioner(WsdDb* db) : db_(db) {}

  void Require(const std::vector<ComponentId>& cids) {
    planner_.Require(cids);
  }

  Status ExecuteMerges() { return planner_.Execute(db_); }

  ComponentId Resolve(ComponentId cid) const { return planner_.Resolve(cid); }

  void MarkBad(ComponentId mid, size_t row) {
    auto& flags = bad_[mid];
    if (flags.empty()) flags.resize(db_->component(mid).NumRows(), false);
    flags[row] = true;
  }

  // Deletes all bad rows, renormalizes, accumulates stats.
  Status Finish(EnforceStats* stats) {
    double kept_product = 1.0;
    for (auto& [mid, flags] : bad_) {
      Component& c = db_->mutable_component(mid);
      double kept_mass = 0.0;
      std::vector<uint32_t> keep;
      keep.reserve(c.NumRows());
      for (size_t r = 0; r < c.NumRows(); ++r) {
        if (!flags[r]) {
          kept_mass += c.prob(r);
          keep.push_back(static_cast<uint32_t>(r));
        } else {
          stats->rows_removed++;
        }
      }
      if (keep.empty() || kept_mass <= 0.0) {
        return Status::Inconsistent(
            "constraint removes every world (component " +
            std::to_string(mid) + ")");
      }
      kept_product *= kept_mass;
      c.KeepRows(keep);
      MAYBMS_RETURN_IF_ERROR(c.Renormalize());
    }
    stats->removed_mass = 1.0 - kept_product;
    return Status::OK();
  }

 private:
  WsdDb* db_;
  MergePlanner planner_;
  std::unordered_map<ComponentId, std::vector<bool>> bad_;
};

// ---------------------------------------------------------------------------
// Domain constraints.
// ---------------------------------------------------------------------------

Status EnforceDomain(WsdDb* db, const Constraint& con, EnforceStats* stats) {
  MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* rel,
                          db->GetRelation(con.relation()));
  MAYBMS_ASSIGN_OR_RETURN(ExprPtr pred,
                          con.predicate()->BindAgainst(rel->schema()));
  std::vector<size_t> cols;
  pred->CollectColumns(&cols);
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());

  Conditioner cond(db);
  BottomGatingIndex gating_index = BuildBottomGatingIndex(*db);
  // Pass 1: register merges.
  struct Work {
    size_t tuple_idx;
    std::vector<ComponentId> cids;  // empty => fully certain & un-gated
  };
  std::vector<Work> work;
  for (size_t i = 0; i < rel->NumTuples(); ++i) {
    const WsdTuple& t = rel->tuple(i);
    stats->tuples_checked++;
    std::vector<ComponentId> cids;
    for (size_t c : cols) {
      if (t.cells[c].is_ref()) cids.push_back(t.cells[c].ref().cid);
    }
    for (ComponentId g : LookupBottomGating(gating_index, t.deps)) {
      cids.push_back(g);
    }
    std::sort(cids.begin(), cids.end());
    cids.erase(std::unique(cids.begin(), cids.end()), cids.end());
    if (!cids.empty()) {
      cond.Require(cids);
      work.push_back({i, std::move(cids)});
    } else {
      work.push_back({i, {}});
    }
  }
  MAYBMS_RETURN_IF_ERROR(cond.ExecuteMerges());

  // Pass 2: evaluate.
  Tuple eval_buf(rel->schema().size(), Value::Null());
  for (const auto& w : work) {
    // Re-read the tuple: merges remapped its cells.
    const WsdTuple& t = rel->tuple(w.tuple_idx);
    if (w.cids.empty()) {
      for (size_t c : cols) eval_buf[c] = t.cells[c].value();
      MAYBMS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*pred, eval_buf));
      if (!pass) {
        return Status::Inconsistent(
            "certain tuple violates " + con.ToString() +
            " — no consistent world exists");
      }
      continue;
    }
    ComponentId mid = cond.Resolve(w.cids[0]);
    const Component& m = db->component(mid);
    // Gating slots of this tuple inside m.
    std::vector<uint32_t> gating;
    for (uint32_t s = 0; s < m.NumSlots(); ++s) {
      if (std::binary_search(t.deps.begin(), t.deps.end(), m.slot(s).owner)) {
        gating.push_back(s);
      }
    }
    // Involved cells layout.
    std::vector<std::pair<size_t, uint32_t>> ref_cols;
    for (size_t c : cols) {
      const Cell& cell = t.cells[c];
      if (cell.is_certain()) {
        eval_buf[c] = cell.value();
      } else {
        MAYBMS_CHECK(cell.ref().cid == mid) << "merge planner bug";
        ref_cols.emplace_back(c, cell.ref().slot);
      }
    }
    for (size_t r = 0; r < m.NumRows(); ++r) {
      bool alive = true;
      for (uint32_t s : gating) {
        if (m.IsBottomAt(r, s)) {
          alive = false;
          break;
        }
      }
      if (!alive) continue;
      bool dead_value = false;
      for (const auto& [c, slot] : ref_cols) {
        const PackedValue& v = m.packed(r, slot);
        if (v.is_bottom()) {
          dead_value = true;
          break;
        }
        eval_buf[c] = v.ToValue();
      }
      if (dead_value) continue;
      MAYBMS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*pred, eval_buf));
      if (!pass) cond.MarkBad(mid, r);
    }
    for (size_t c : cols) eval_buf[c] = Value::Null();
  }
  return cond.Finish(stats);
}

// ---------------------------------------------------------------------------
// FD / key constraints (pairwise equality-generating checks).
// ---------------------------------------------------------------------------

Status EnforcePairwise(WsdDb* db, const Constraint& con, EnforceStats* stats) {
  MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* rel,
                          db->GetRelation(con.relation()));
  std::vector<size_t> lhs, rhs;
  for (const auto& a : con.lhs()) {
    MAYBMS_ASSIGN_OR_RETURN(size_t i, rel->schema().Resolve(a));
    lhs.push_back(i);
  }
  for (const auto& a : con.rhs()) {
    MAYBMS_ASSIGN_OR_RETURN(size_t i, rel->schema().Resolve(a));
    rhs.push_back(i);
  }
  bool is_key = con.kind() == ConstraintKind::kKey;
  stats->tuples_checked += rel->NumTuples();

  // Candidate pair discovery: hash fully-certain-lhs tuples, pair
  // uncertain-lhs tuples conservatively.
  auto lhs_certain = [&](const WsdTuple& t) {
    for (size_t c : lhs) {
      if (!t.cells[c].is_certain()) return false;
    }
    return true;
  };
  std::unordered_map<size_t, std::vector<size_t>> groups;
  std::vector<size_t> uncertain;
  for (size_t i = 0; i < rel->NumTuples(); ++i) {
    const WsdTuple& t = rel->tuple(i);
    if (lhs_certain(t)) {
      size_t h = lhs.size();
      for (size_t c : lhs) HashCombine(&h, t.cells[c].value().Hash());
      groups[h].push_back(i);
    } else {
      uncertain.push_back(i);
    }
  }
  std::vector<std::pair<size_t, size_t>> pairs;
  auto lhs_possibly_equal = [&](size_t i, size_t j) {
    const WsdTuple& a = rel->tuple(i);
    const WsdTuple& b = rel->tuple(j);
    for (size_t c : lhs) {
      if (!CellsPossiblyEqual(*db, a.cells[c], b.cells[c])) return false;
    }
    return true;
  };
  auto rhs_possibly_differ = [&](size_t i, size_t j) {
    if (is_key) return true;
    const WsdTuple& a = rel->tuple(i);
    const WsdTuple& b = rel->tuple(j);
    for (size_t c : rhs) {
      const Cell& x = a.cells[c];
      const Cell& y = b.cells[c];
      if (!(x.is_certain() && y.is_certain() && x.value() == y.value())) {
        return true;  // can differ in some world
      }
    }
    return false;
  };
  for (const auto& [h, members] : groups) {
    for (size_t x = 0; x < members.size(); ++x) {
      for (size_t y = x + 1; y < members.size(); ++y) {
        if (lhs_possibly_equal(members[x], members[y]) &&
            rhs_possibly_differ(members[x], members[y])) {
          pairs.emplace_back(members[x], members[y]);
        }
      }
    }
  }
  for (size_t u : uncertain) {
    for (size_t i = 0; i < rel->NumTuples(); ++i) {
      if (i == u) continue;
      size_t a = std::min(i, u), b = std::max(i, u);
      // Avoid double-adding (uncertain × uncertain would repeat).
      if (i > u && !lhs_certain(rel->tuple(i))) continue;
      if (lhs_possibly_equal(a, b) && rhs_possibly_differ(a, b)) {
        pairs.emplace_back(a, b);
      }
    }
  }
  stats->pairs_checked += pairs.size();

  Conditioner cond(db);
  BottomGatingIndex gating_index = BuildBottomGatingIndex(*db);
  struct Work {
    size_t i, j;
    std::vector<ComponentId> cids;
  };
  std::vector<Work> work;
  std::vector<size_t> value_cols = lhs;
  value_cols.insert(value_cols.end(), rhs.begin(), rhs.end());
  std::sort(value_cols.begin(), value_cols.end());
  value_cols.erase(std::unique(value_cols.begin(), value_cols.end()),
                   value_cols.end());
  for (auto [i, j] : pairs) {
    std::vector<ComponentId> cids;
    for (size_t idx : {i, j}) {
      const WsdTuple& t = rel->tuple(idx);
      for (size_t c : value_cols) {
        if (t.cells[c].is_ref()) cids.push_back(t.cells[c].ref().cid);
      }
      for (ComponentId g : LookupBottomGating(gating_index, t.deps)) {
        cids.push_back(g);
      }
    }
    std::sort(cids.begin(), cids.end());
    cids.erase(std::unique(cids.begin(), cids.end()), cids.end());
    if (cids.empty()) {
      // Both tuples certain and always-alive: a certain violation.
      return Status::Inconsistent("certain tuples violate " + con.ToString());
    }
    cond.Require(cids);
    work.push_back({i, j, std::move(cids)});
  }
  MAYBMS_RETURN_IF_ERROR(cond.ExecuteMerges());

  for (const auto& w : work) {
    ComponentId mid = cond.Resolve(w.cids[0]);
    const Component& m = db->component(mid);
    const WsdTuple& t1 = rel->tuple(w.i);
    const WsdTuple& t2 = rel->tuple(w.j);
    // Gating slots for both tuples inside m.
    auto gating_of = [&](const WsdTuple& t) {
      std::vector<uint32_t> g;
      for (uint32_t s = 0; s < m.NumSlots(); ++s) {
        if (std::binary_search(t.deps.begin(), t.deps.end(),
                               m.slot(s).owner)) {
          g.push_back(s);
        }
      }
      return g;
    };
    std::vector<uint32_t> g1 = gating_of(t1), g2 = gating_of(t2);
    // Pre-pack certain cells once so the row loop compares PackedValues
    // only (no per-row materialization or interning).
    using lifted_internal::MakeCellView;
    using lifted_internal::PackedCellView;
    auto view_of = [&](const WsdTuple& t, size_t c) {
      return MakeCellView(t.cells[c], mid);
    };
    std::vector<std::pair<PackedCellView, PackedCellView>> lhs_views,
        rhs_views;
    for (size_t c : lhs) lhs_views.push_back({view_of(t1, c), view_of(t2, c)});
    for (size_t c : rhs) rhs_views.push_back({view_of(t1, c), view_of(t2, c)});
    for (size_t r = 0; r < m.NumRows(); ++r) {
      bool alive = true;
      for (uint32_t s : g1) {
        if (m.IsBottomAt(r, s)) {
          alive = false;
          break;
        }
      }
      for (uint32_t s : g2) {
        if (!alive) break;
        if (m.IsBottomAt(r, s)) alive = false;
      }
      if (!alive) continue;
      auto value_at = [&](const PackedCellView& view) -> const PackedValue& {
        return view.certain ? view.value : m.packed(r, view.slot);
      };
      bool lhs_equal = true;
      for (const auto& [va, vb] : lhs_views) {
        const PackedValue& a = value_at(va);
        const PackedValue& b = value_at(vb);
        if (a.is_bottom() || b.is_bottom() || !(a == b)) {
          lhs_equal = false;
          break;
        }
      }
      if (!lhs_equal) continue;
      bool violation;
      if (is_key) {
        violation = true;  // two distinct tuples agree on the key
      } else {
        violation = false;
        for (const auto& [va, vb] : rhs_views) {
          const PackedValue& a = value_at(va);
          const PackedValue& b = value_at(vb);
          if (a.is_bottom() || b.is_bottom()) {
            violation = false;  // dead value => tuple dead; caught above
            break;
          }
          if (!(a == b)) {
            violation = true;
            break;
          }
        }
      }
      if (violation) cond.MarkBad(mid, r);
    }
  }
  return cond.Finish(stats);
}

}  // namespace

Result<EnforceStats> Enforce(WsdDb* db, const Constraint& constraint) {
  EnforceStats stats;
  stats.log2_worlds_before = db->Log2WorldCount();
  switch (constraint.kind()) {
    case ConstraintKind::kDomain:
      MAYBMS_RETURN_IF_ERROR(EnforceDomain(db, constraint, &stats));
      break;
    case ConstraintKind::kFd:
    case ConstraintKind::kKey:
      MAYBMS_RETURN_IF_ERROR(EnforcePairwise(db, constraint, &stats));
      break;
  }
  MAYBMS_ASSIGN_OR_RETURN(NormalizeStats ns, Normalize(db));
  (void)ns;
  stats.log2_worlds_after = db->Log2WorldCount();
  return stats;
}

Result<EnforceStats> EnforceAll(WsdDb* db,
                                const std::vector<Constraint>& constraints) {
  EnforceStats total;
  total.log2_worlds_before = db->Log2WorldCount();
  double kept = 1.0;
  for (const auto& c : constraints) {
    MAYBMS_ASSIGN_OR_RETURN(EnforceStats s, Enforce(db, c));
    kept *= (1.0 - s.removed_mass);
    total.rows_removed += s.rows_removed;
    total.tuples_checked += s.tuples_checked;
    total.pairs_checked += s.pairs_checked;
  }
  total.removed_mass = 1.0 - kept;
  total.log2_worlds_after = db->Log2WorldCount();
  return total;
}

Result<double> ViolationProbability(const WsdDb& db,
                                    const Constraint& constraint) {
  WsdDb copy = db;
  auto stats = Enforce(&copy, constraint);
  if (!stats.ok()) {
    if (stats.status().code() == StatusCode::kInconsistent) return 1.0;
    return stats.status();
  }
  return stats->removed_mass;
}

}  // namespace maybms
