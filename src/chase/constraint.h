// Integrity constraints for data cleaning (the paper's experiment 2:
// "We cleaned the world-set from inconsistencies by enforcing real-life
// integrity constraints").
//
// Enforcement is *conditioning*: worlds violating a constraint are removed
// from the world-set and the probabilities of the surviving worlds are
// renormalized. On the decomposition this amounts to deleting rows from
// (merged) components and renormalizing their mass.
#ifndef MAYBMS_CHASE_CONSTRAINT_H_
#define MAYBMS_CHASE_CONSTRAINT_H_

#include <string>
#include <vector>

#include "ra/expr.h"

namespace maybms {

enum class ConstraintKind : uint8_t {
  kDomain,  ///< every existing tuple satisfies a predicate
  kFd,      ///< functional dependency lhs -> rhs within one relation
  kKey,     ///< no two distinct tuples agree on the key attributes
};

/// A declarative constraint over one relation.
class Constraint {
 public:
  /// ∀t ∈ R: pred(t). `pred` uses the relation's attribute names;
  /// conditional domain constraints are written as implications, e.g.
  /// NOT(MARST = 1) OR AGE >= 15.
  static Constraint Domain(std::string relation, ExprPtr pred,
                           std::string name = "");

  /// ∀t1,t2 ∈ R: t1[lhs] = t2[lhs] ⟹ t1[rhs] = t2[rhs].
  static Constraint FunctionalDependency(std::string relation,
                                         std::vector<std::string> lhs,
                                         std::vector<std::string> rhs,
                                         std::string name = "");

  /// ∀t1≠t2 ∈ R: t1[attrs] ≠ t2[attrs] (some attribute differs).
  static Constraint Key(std::string relation, std::vector<std::string> attrs,
                        std::string name = "");

  ConstraintKind kind() const { return kind_; }
  const std::string& relation() const { return relation_; }
  const ExprPtr& predicate() const { return pred_; }
  const std::vector<std::string>& lhs() const { return lhs_; }
  const std::vector<std::string>& rhs() const { return rhs_; }
  /// Human-readable label for reports.
  const std::string& name() const { return name_; }

  std::string ToString() const;

 private:
  ConstraintKind kind_ = ConstraintKind::kDomain;
  std::string relation_;
  std::string name_;
  ExprPtr pred_;                  // kDomain
  std::vector<std::string> lhs_;  // kFd / kKey
  std::vector<std::string> rhs_;  // kFd
};

}  // namespace maybms

#endif  // MAYBMS_CHASE_CONSTRAINT_H_
