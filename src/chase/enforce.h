// Constraint enforcement by conditioning: removes the worlds violating a
// constraint and renormalizes the probability distribution over the
// surviving worlds (Bayes conditioning on "the data is consistent").
#ifndef MAYBMS_CHASE_ENFORCE_H_
#define MAYBMS_CHASE_ENFORCE_H_

#include <vector>

#include "chase/constraint.h"
#include "common/result.h"
#include "core/wsd.h"

namespace maybms {

/// Counters reported by Enforce.
struct EnforceStats {
  /// Probability mass of the removed (inconsistent) worlds, i.e. the
  /// violation probability of the constraint before enforcement.
  double removed_mass = 0.0;
  /// Component rows deleted across all (merged) components.
  size_t rows_removed = 0;
  /// Tuples whose predicates/pairs were examined.
  size_t tuples_checked = 0;
  /// Candidate tuple pairs examined (FD/key constraints).
  size_t pairs_checked = 0;
  double log2_worlds_before = 0.0;
  double log2_worlds_after = 0.0;
};

/// Enforces one constraint on `db`. Fails with kInconsistent when no world
/// satisfies the constraint. The resulting distribution is exactly the
/// conditional distribution given the constraint (verified against the
/// enumeration oracle in the tests).
Result<EnforceStats> Enforce(WsdDb* db, const Constraint& constraint);

/// Enforces constraints in order, accumulating stats.
Result<EnforceStats> EnforceAll(WsdDb* db,
                                const std::vector<Constraint>& constraints);

/// Probability that `db` violates the constraint (no mutation).
Result<double> ViolationProbability(const WsdDb& db,
                                    const Constraint& constraint);

}  // namespace maybms

#endif  // MAYBMS_CHASE_ENFORCE_H_
