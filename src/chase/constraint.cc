#include "chase/constraint.h"

#include "common/string_util.h"

namespace maybms {

Constraint Constraint::Domain(std::string relation, ExprPtr pred,
                              std::string name) {
  Constraint c;
  c.kind_ = ConstraintKind::kDomain;
  c.relation_ = std::move(relation);
  c.pred_ = std::move(pred);
  c.name_ = name.empty() ? "domain" : std::move(name);
  return c;
}

Constraint Constraint::FunctionalDependency(std::string relation,
                                            std::vector<std::string> lhs,
                                            std::vector<std::string> rhs,
                                            std::string name) {
  Constraint c;
  c.kind_ = ConstraintKind::kFd;
  c.relation_ = std::move(relation);
  c.lhs_ = std::move(lhs);
  c.rhs_ = std::move(rhs);
  c.name_ = name.empty() ? "fd" : std::move(name);
  return c;
}

Constraint Constraint::Key(std::string relation,
                           std::vector<std::string> attrs, std::string name) {
  Constraint c;
  c.kind_ = ConstraintKind::kKey;
  c.relation_ = std::move(relation);
  c.lhs_ = std::move(attrs);
  c.name_ = name.empty() ? "key" : std::move(name);
  return c;
}

std::string Constraint::ToString() const {
  switch (kind_) {
    case ConstraintKind::kDomain:
      return StrFormat("DOMAIN[%s] on %s: %s", name_.c_str(),
                       relation_.c_str(), pred_->ToString().c_str());
    case ConstraintKind::kFd:
      return StrFormat("FD[%s] on %s: %s -> %s", name_.c_str(),
                       relation_.c_str(), Join(lhs_, ",").c_str(),
                       Join(rhs_, ",").c_str());
    case ConstraintKind::kKey:
      return StrFormat("KEY[%s] on %s: (%s)", name_.c_str(),
                       relation_.c_str(), Join(lhs_, ",").c_str());
  }
  return "?";
}

}  // namespace maybms
