#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <utility>

#include "common/logging.h"
#include "server/protocol.h"
#include "sql/parser.h"

namespace maybms {
namespace server {

namespace {

/// A request line longer than this closes the connection (malformed or
/// hostile input, not SQL).
constexpr size_t kMaxLineBytes = 1 << 20;

Status ErrnoStatus(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

/// Per-connection state. The socket is read only by the I/O thread and
/// written only by the statement currently owning the connection
/// (busy == true); busy/pending/closed transitions happen under
/// Server::conns_mu_. The token bucket and session are touched only by
/// the owner, so they need no lock of their own.
struct Server::Conn {
  int fd = -1;
  std::string inbuf;
  std::deque<std::string> pending;
  bool busy = false;
  bool closed = false;      ///< peer hung up or protocol violation
  bool want_close = false;  ///< close after the in-flight response
  sql::Session session;
  double tokens = 0.0;
  std::chrono::steady_clock::time_point last_refill;
};

Result<std::unique_ptr<Server>> Server::Start(SharedCatalog* catalog,
                                              ServerOptions options) {
  MAYBMS_CHECK(catalog != nullptr);
  auto server = std::unique_ptr<Server>(new Server());
  server->catalog_ = catalog;
  server->options_ = options;
  if (server->options_.workers == 0) {
    server->options_.workers = DefaultNumThreads();
  }
  if (server->options_.max_in_flight == 0) {
    server->options_.max_in_flight = 4 * server->options_.workers;
  }

  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) return ErrnoStatus("socket");
  int one = 1;
  ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return ErrnoStatus("bind");
  }
  if (::listen(server->listen_fd_, 128) != 0) return ErrnoStatus("listen");
  // The accept loop and the wake pipe drain until EAGAIN — nonblocking.
  ::fcntl(server->listen_fd_, F_SETFL, O_NONBLOCK);
  socklen_t len = sizeof(addr);
  if (::getsockname(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    return ErrnoStatus("getsockname");
  }
  server->port_ = ntohs(addr.sin_port);
  if (::pipe(server->wake_fds_) != 0) return ErrnoStatus("pipe");
  ::fcntl(server->wake_fds_[0], F_SETFL, O_NONBLOCK);

  server->workers_ = std::make_unique<TaskPool>(server->options_.workers);
  server->io_thread_ = std::thread([s = server.get()] { s->IoLoop(); });
  return server;
}

Server::~Server() { Stop(); }

void Server::Stop() {
  if (stopping_.exchange(true)) return;
  WakeIo();
  if (io_thread_.joinable()) io_thread_.join();
  // Drains queued + running statements (their responses still go out),
  // then joins the workers.
  workers_.reset();
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto& [fd, conn] : conns_) {
    ::close(fd);
    conn->closed = true;
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  listen_fd_ = -1;
}

void Server::WakeIo() {
  char b = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &b, 1);
}

ServerCounters Server::counters() const {
  ServerCounters c;
  c.connections_accepted = connections_accepted_.load();
  c.requests_served = requests_served_.load();
  c.sql_errors = sql_errors_.load();
  c.rejected_rate_limit = rejected_rate_limit_.load();
  c.rejected_overload = rejected_overload_.load();
  c.result_cache_hits = cache_hits_.load();
  c.result_cache_misses = cache_misses_.load();
  return c;
}

std::optional<std::string> Server::CacheLookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) return std::nullopt;
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_it);
  return it->second.response;
}

void Server::CacheInsert(const std::string& key, std::string response) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    // A concurrent worker raced us to the same (version, settings,
    // statement) key; both computed the same deterministic response.
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_it);
    return;
  }
  cache_lru_.push_front(key);
  cache_.emplace(key, CacheEntry{std::move(response), cache_lru_.begin()});
  while (cache_.size() > options_.result_cache_entries) {
    cache_.erase(cache_lru_.back());
    cache_lru_.pop_back();
  }
}

void Server::IoLoop() {
  std::vector<pollfd> fds;
  std::vector<int> poll_conns;
  char buf[4096];
  while (!stopping_.load(std::memory_order_acquire)) {
    fds.clear();
    poll_conns.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_fds_[0], POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (const auto& [fd, conn] : conns_) {
        // Busy connections are owned by a worker; their next request
        // (if pipelined) is already buffered and dispatches from
        // FinishStatement, so only idle sockets are polled.
        if (!conn->busy && !conn->closed) {
          fds.push_back({fd, POLLIN, 0});
          poll_conns.push_back(fd);
        }
      }
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) break;
    if (fds[1].revents & POLLIN) {
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (fds[0].revents & POLLIN) {
      for (;;) {
        int cfd = ::accept(listen_fd_, nullptr, nullptr);
        if (cfd < 0) break;
        int one = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        // Reads below use MSG_DONTWAIT; writes (from workers) block.
        auto conn = std::make_shared<Conn>();
        conn->fd = cfd;
        conn->tokens = options_.rate_burst;
        conn->last_refill = std::chrono::steady_clock::now();
        connections_accepted_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(conns_mu_);
        conns_.emplace(cfd, std::move(conn));
      }
    }
    for (size_t i = 2; i < fds.size(); ++i) {
      if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      std::shared_ptr<Conn> conn;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        auto it = conns_.find(poll_conns[i - 2]);
        if (it == conns_.end()) continue;
        conn = it->second;
        if (conn->busy || conn->closed) continue;
      }
      bool eof = false;
      for (;;) {
        ssize_t n = ::recv(conn->fd, buf, sizeof(buf), MSG_DONTWAIT);
        if (n > 0) {
          conn->inbuf.append(buf, static_cast<size_t>(n));
          if (conn->inbuf.size() > kMaxLineBytes) eof = true;
          if (static_cast<size_t>(n) < sizeof(buf)) break;
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        eof = true;  // orderly EOF or hard error
        break;
      }
      // Split complete lines off the buffer (conn is idle: the I/O
      // thread is its owner right now, no lock needed for inbuf).
      size_t start = 0;
      for (;;) {
        size_t nl = conn->inbuf.find('\n', start);
        if (nl == std::string::npos) break;
        std::string line = conn->inbuf.substr(start, nl - start);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        start = nl + 1;
        if (!line.empty()) conn->pending.push_back(std::move(line));
      }
      conn->inbuf.erase(0, start);

      std::string first;
      bool dispatch = false;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        if (!conn->pending.empty()) {
          first = std::move(conn->pending.front());
          conn->pending.pop_front();
          conn->busy = true;
          conn->want_close = eof;  // serve buffered requests, then close
          dispatch = true;
        } else if (eof) {
          conn->closed = true;
          ::close(conn->fd);
          conns_.erase(conn->fd);
        }
      }
      if (dispatch) Dispatch(conn, std::move(first));
    }
  }
}

void Server::SendAll(const std::shared_ptr<Conn>& conn,
                     const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(conn->fd, data.data() + off, data.size() - off,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn->want_close = true;  // peer gone; reap in FinishStatement
      return;
    }
    off += static_cast<size_t>(n);
  }
}

void Server::Dispatch(const std::shared_ptr<Conn>& conn, std::string line) {
  // Invariant: conn->busy == true; this thread owns the connection.
  for (;;) {
    // Token bucket: refill by elapsed wall time, spend one per request.
    bool limited = false;
    if (options_.rate_qps > 0) {
      const auto now = std::chrono::steady_clock::now();
      const double dt =
          std::chrono::duration<double>(now - conn->last_refill).count();
      conn->last_refill = now;
      conn->tokens = std::min(options_.rate_burst,
                              conn->tokens + dt * options_.rate_qps);
      if (conn->tokens >= 1.0) {
        conn->tokens -= 1.0;
      } else {
        limited = true;
      }
    }
    if (!limited) {
      const uint64_t inflight =
          in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (inflight > options_.max_in_flight) {
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        rejected_overload_.fetch_add(1, std::memory_order_relaxed);
        SendAll(conn, EncodeErr("server overloaded, retry later"));
      } else {
        workers_->Submit(
            [this, conn, l = std::move(line)]() mutable {
              ServeLine(conn, std::move(l));
            });
        return;  // ServeLine calls FinishStatement when done
      }
    } else {
      rejected_rate_limit_.fetch_add(1, std::memory_order_relaxed);
      SendAll(conn, EncodeErr("rate limit exceeded"));
    }
    // Rejected without occupying a worker: move on to the next buffered
    // request, or go idle.
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conn->want_close || conn->closed || conn->pending.empty()) break;
      line = std::move(conn->pending.front());
      conn->pending.pop_front();
    }
  }
  FinishStatement(conn);
}

bool Server::ServeDotCommand(const std::shared_ptr<Conn>& conn,
                             const std::string& line) {
  if (line.empty() || line[0] != '.') return false;
  if (line == ".ping") {
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    SendAll(conn, EncodeOk({"pong"}));
  } else if (line == ".stats") {
    const ServerCounters c = counters();
    std::vector<std::string> out = {
        "connections_accepted " + std::to_string(c.connections_accepted),
        "requests_served " + std::to_string(c.requests_served),
        "sql_errors " + std::to_string(c.sql_errors),
        "rejected_rate_limit " + std::to_string(c.rejected_rate_limit),
        "rejected_overload " + std::to_string(c.rejected_overload),
        "catalog_version " + std::to_string(catalog_->version()),
        "workers " + std::to_string(options_.workers),
        "result_cache_hits " + std::to_string(c.result_cache_hits),
        "result_cache_misses " + std::to_string(c.result_cache_misses),
    };
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    SendAll(conn, EncodeOk(out));
  } else if (line.rfind(".sleep ", 0) == 0) {
    // Occupies this worker for N ms — the admission-control tests' lever.
    const int ms = std::atoi(line.c_str() + 7);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    SendAll(conn, EncodeOk({"slept " + std::to_string(ms)}));
  } else if (line == ".quit") {
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    SendAll(conn, EncodeOk({"bye"}));
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn->want_close = true;
  } else {
    sql_errors_.fetch_add(1, std::memory_order_relaxed);
    SendAll(conn, EncodeErr("unknown command: " + line));
  }
  return true;
}

void Server::ServeLine(const std::shared_ptr<Conn>& conn, std::string line) {
  if (!ServeDotCommand(conn, line)) {
    Result<sql::Statement> stmt = sql::ParseStatement(line);
    if (!stmt.ok()) {
      sql_errors_.fetch_add(1, std::memory_order_relaxed);
      SendAll(conn, EncodeErr(stmt.status().ToString()));
    } else {
      ServeStatement(conn, *stmt, line);
    }
  }
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  FinishStatement(conn);
}

void Server::ServeStatement(const std::shared_ptr<Conn>& conn,
                            const sql::Statement& stmt,
                            const std::string& line) {
  // SET is session-local: it tunes this connection's own session and
  // must never reach the shared writer (whose settings are global).
  if (stmt.kind == sql::Statement::Kind::kSet) {
    Result<sql::StatementResult> result = conn->session.ExecuteParsed(stmt);
    if (!result.ok()) {
      sql_errors_.fetch_add(1, std::memory_order_relaxed);
      SendAll(conn, EncodeErr(result.status().ToString()));
    } else {
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      SendAll(conn, EncodeOk(SplitLines(result->ToDisplayString())));
    }
    return;
  }
  if (IsReadStatement(stmt)) {
    // Read statements are pure functions of (published version, session
    // settings, statement text) — exactly the result-cache key. The
    // version is read before the snapshot, so a racing publish can only
    // cache a fresher answer under the older key, never a staler one.
    std::string key;
    const bool use_cache = options_.result_cache_entries > 0;
    if (use_cache) {
      key = std::to_string(catalog_->version()) + '|' +
            std::to_string(conn->session.SettingsFingerprint()) + '|' + line;
      if (std::optional<std::string> hit = CacheLookup(key)) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        requests_served_.fetch_add(1, std::memory_order_relaxed);
        SendAll(conn, *hit);
        return;
      }
      cache_misses_.fetch_add(1, std::memory_order_relaxed);
    }
    // Snapshot isolation: the whole statement runs against one
    // published version, however many writes commit meanwhile.
    conn->session.db() = catalog_->SnapshotCopy();
    Result<sql::StatementResult> result = conn->session.ExecuteParsed(stmt);
    if (!result.ok()) {
      sql_errors_.fetch_add(1, std::memory_order_relaxed);
      SendAll(conn, EncodeErr(result.status().ToString()));
      return;
    }
    std::string response = EncodeOk(SplitLines(result->ToDisplayString()));
    if (use_cache) CacheInsert(key, response);
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    SendAll(conn, response);
    return;
  }
  Result<sql::StatementResult> result = catalog_->ExecuteWrite(stmt);
  if (!result.ok()) {
    sql_errors_.fetch_add(1, std::memory_order_relaxed);
    SendAll(conn, EncodeErr(result.status().ToString()));
  } else {
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    SendAll(conn, EncodeOk(SplitLines(result->ToDisplayString())));
  }
}

void Server::FinishStatement(const std::shared_ptr<Conn>& conn) {
  std::string next;
  bool have_next = false;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (conn->want_close || conn->closed) {
      if (!conn->closed) {
        conn->closed = true;
        ::close(conn->fd);
      }
      conns_.erase(conn->fd);
      return;
    }
    if (!conn->pending.empty()) {
      next = std::move(conn->pending.front());
      conn->pending.pop_front();
      have_next = true;  // stays busy
    } else {
      conn->busy = false;
    }
  }
  if (have_next) {
    Dispatch(conn, std::move(next));
  } else {
    WakeIo();  // put the idle socket back on the poll set
  }
}

}  // namespace server
}  // namespace maybms
