// A small blocking client for the server's line protocol — what the
// integration tests and bench_server use; interactive exploration works
// just as well over `nc 127.0.0.1 <port>`.
#ifndef MAYBMS_SERVER_CLIENT_H_
#define MAYBMS_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "server/protocol.h"

namespace maybms {
namespace server {

class Client {
 public:
  /// Connects to 127.0.0.1:port.
  static Result<Client> Connect(uint16_t port);

  Client(Client&& o) noexcept : fd_(o.fd_), buf_(std::move(o.buf_)) {
    o.fd_ = -1;
  }
  Client& operator=(Client&& o) noexcept;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one statement line and blocks for its response. The
  /// outer Result is transport failure (connection lost, malformed
  /// frame); a server-side "ERR ..." comes back as Response::ok=false.
  Result<Response> Execute(const std::string& statement);

  /// Closes the socket early (Execute afterwards fails).
  void Close();

 private:
  explicit Client(int fd) : fd_(fd) {}
  /// Next '\n'-terminated line off the socket.
  Result<std::string> ReadLine();

  int fd_ = -1;
  std::string buf_;  ///< bytes read past the last returned line
};

}  // namespace server
}  // namespace maybms

#endif  // MAYBMS_SERVER_CLIENT_H_
