// Epoch-based reclamation for the server's versioned catalog.
//
// Readers enter an epoch (claiming one slot of a fixed array), load the
// currently published catalog version, copy what they need, and exit.
// Writers publish a replacement version, then Retire() the old one: it
// parks on a limbo list stamped with the current global epoch and is
// destroyed only once every active reader entered at a later epoch —
// i.e. after every reader that could still dereference it has exited.
//
// This trades a tiny grace-period delay for pointer loads on the read
// path with no reference-count contention: a reader's whole critical
// section is one atomic slot store, one pointer load, and a slot clear.
#ifndef MAYBMS_SERVER_EPOCH_H_
#define MAYBMS_SERVER_EPOCH_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace maybms {
namespace server {

class EpochManager {
 public:
  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// RAII reader critical section: while alive, no object retired after
  /// entry is destroyed.
  class Guard {
   public:
    explicit Guard(EpochManager* m) : m_(m), slot_(m->Enter()) {}
    ~Guard() { m_->Exit(slot_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochManager* m_;
    size_t slot_;
  };

  /// Parks `obj` until every currently-active reader exits, then drops
  /// the reference (destroying the object if this was the last owner).
  /// Type-erased so one manager serves any payload.
  void Retire(std::shared_ptr<const void> obj);

  /// Objects currently parked (for tests: proves deferred destruction).
  size_t LimboSize() const;

 private:
  static constexpr size_t kSlots = 256;
  static constexpr uint64_t kIdle = ~uint64_t{0};

  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
  };

  /// Claims a slot and stamps it with the current global epoch
  /// (sequentially consistent, so a concurrent Retire either sees the
  /// stamp or is ordered entirely before the reader's pointer load).
  size_t Enter();
  void Exit(size_t slot);
  /// Destroys limbo entries older than every active slot. mu_ held.
  void ReclaimLocked();

  std::atomic<uint64_t> global_epoch_{0};
  std::array<Slot, kSlots> slots_;
  mutable std::mutex mu_;  ///< guards limbo_
  std::vector<std::pair<uint64_t, std::shared_ptr<const void>>> limbo_;
};

}  // namespace server
}  // namespace maybms

#endif  // MAYBMS_SERVER_EPOCH_H_
