// SharedCatalog: one world-set database served to many sessions.
//
// Concurrency model (the server's heart):
//
//   Readers   take an epoch guard, load the currently published
//             `const WsdDb*` and copy it. The copy is cheap — WsdDb is
//             copy-on-write down to relation tuple vectors and
//             components — and fully snapshot-isolated: a reader's
//             SELECT/CONF runs against one immutable version no matter
//             how many writes commit meanwhile.
//
//   Writers   are serialized per target relation (a lock table keyed by
//             relation name; catalog-wide statements like SAVE/LOAD/
//             CHECKPOINT take the table exclusively), then funnel
//             through one commit mutex around the writer session — the
//             existing WAL appends-and-fsyncs *before* applying, so the
//             log order equals the commit order and durability
//             semantics are exactly the embedded engine's. After the
//             statement applies, a fresh COW copy of the database is
//             published by atomic pointer swap and the previous version
//             retires through epoch-based reclamation: it is destroyed
//             only after the last reader that could see it exits.
#ifndef MAYBMS_SERVER_SHARED_CATALOG_H_
#define MAYBMS_SERVER_SHARED_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "common/result.h"
#include "core/wsd.h"
#include "server/epoch.h"
#include "sql/ast.h"
#include "sql/session.h"

namespace maybms {
namespace server {

/// True for statement kinds a snapshot copy can answer (no catalog
/// mutation, nothing WAL-logged): SELECT, EXPLAIN, SHOW.
bool IsReadStatement(const sql::Statement& stmt);

class SharedCatalog {
 public:
  /// Starts from `initial` (e.g. a generated census WSD) and publishes
  /// it as version 0.
  explicit SharedCatalog(WsdDb initial = WsdDb());
  ~SharedCatalog();

  SharedCatalog(const SharedCatalog&) = delete;
  SharedCatalog& operator=(const SharedCatalog&) = delete;

  /// The authoritative writer session, for single-threaded setup before
  /// serving (attach durability via SAVE/LOAD, tune options, seed
  /// data). Call Publish() afterwards; never use while serving.
  sql::Session* setup_session() { return &writer_; }

  /// Publishes the writer session's current database as a new version.
  void Publish();

  /// A snapshot-isolated copy of the latest published version.
  WsdDb SnapshotCopy() const;

  /// Executes a mutating statement on the authoritative database and
  /// publishes the result. `stmt` must not be a read statement, and
  /// LOAD DATABASE ... MAPPED is rejected (a mapped session answers
  /// queries lazily from one mmap; served snapshots must be resident).
  Result<sql::StatementResult> ExecuteWrite(const sql::Statement& stmt);

  /// Monotone version counter (bumped by every Publish).
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }
  /// Catalog versions awaiting reclamation (for tests).
  size_t RetiredVersions() const { return epochs_.LimboSize(); }

 private:
  /// The relation a statement writes, or "" for catalog-wide ones.
  static std::string TargetRelation(const sql::Statement& stmt);
  /// Publishes writer_.db() as the next version. commit_mu_ held.
  void PublishLocked();

  mutable EpochManager epochs_;
  /// Owner of the version `published_` points at; written under
  /// commit_mu_, destroyed via epochs_ once safe.
  std::shared_ptr<const WsdDb> published_owner_;
  std::atomic<const WsdDb*> published_{nullptr};
  std::atomic<uint64_t> version_{0};

  /// Per-relation writers hold this shared + their relation's mutex;
  /// catalog-wide writers hold it exclusive.
  std::shared_mutex relation_locks_;
  std::mutex lock_table_mu_;  ///< guards lock_table_
  std::map<std::string, std::unique_ptr<std::mutex>> lock_table_;

  /// Serializes WAL-append + apply + publish — commit order must equal
  /// log order for replay to reproduce the database.
  std::mutex commit_mu_;
  sql::Session writer_;
};

}  // namespace server
}  // namespace maybms

#endif  // MAYBMS_SERVER_SHARED_CATALOG_H_
