#include "server/epoch.h"

#include <thread>

namespace maybms {
namespace server {

size_t EpochManager::Enter() {
  // Start probing at a per-thread hint so distinct threads land on
  // distinct slots without coordination; collisions just probe onward.
  const size_t hint =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kSlots;
  for (;;) {
    for (size_t i = 0; i < kSlots; ++i) {
      const size_t s = (hint + i) % kSlots;
      uint64_t expected = kIdle;
      // The CAS both claims the slot and publishes the epoch stamp. The
      // stamp may be stale by the time it lands (global_epoch_ advanced
      // in between) — stale stamps only make reclamation *more*
      // conservative, never less.
      if (slots_[s].epoch.compare_exchange_strong(
              expected, global_epoch_.load(std::memory_order_seq_cst),
              std::memory_order_seq_cst)) {
        return s;
      }
    }
    // All slots busy: more concurrent readers than kSlots. Yield and
    // retry — readers hold slots only for a pointer load + COW copy.
    std::this_thread::yield();
  }
}

void EpochManager::Exit(size_t slot) {
  slots_[slot].epoch.store(kIdle, std::memory_order_seq_cst);
}

void EpochManager::Retire(std::shared_ptr<const void> obj) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t e = global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  limbo_.emplace_back(e, std::move(obj));
  ReclaimLocked();
}

void EpochManager::ReclaimLocked() {
  // A reader that could still hold a retired pointer entered before the
  // corresponding publish+Retire, so its slot stamp is <= that entry's
  // epoch and the entry survives the min-scan. Idle slots do not bound.
  uint64_t min_active = ~uint64_t{0};
  for (const Slot& s : slots_) {
    const uint64_t e = s.epoch.load(std::memory_order_seq_cst);
    if (e != kIdle && e < min_active) min_active = e;
  }
  size_t keep = 0;
  for (size_t i = 0; i < limbo_.size(); ++i) {
    if (limbo_[i].first >= min_active) {
      if (keep != i) limbo_[keep] = std::move(limbo_[i]);
      ++keep;
    }
  }
  limbo_.resize(keep);
}

size_t EpochManager::LimboSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return limbo_.size();
}

}  // namespace server
}  // namespace maybms
