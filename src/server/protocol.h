// The server's line protocol. Text-based and newline-framed so `nc`
// works as a client:
//
//   request:   one SQL statement (or dot-command) per line
//   response:  "OK <n>\n" followed by n payload lines, or
//              "ERR <message>\n"
//
// Payload lines are the statement result rendered line by line
// (ToDisplayString split on '\n'); embedded newlines cannot occur and
// '\r' is stripped on both sides. Dot-commands (".ping", ".stats",
// ".quit") bypass SQL parsing for health checks and monitoring.
#ifndef MAYBMS_SERVER_PROTOCOL_H_
#define MAYBMS_SERVER_PROTOCOL_H_

#include <string>
#include <vector>

namespace maybms {
namespace server {

/// Renders a success response: "OK <n>" + the payload lines.
std::string EncodeOk(const std::vector<std::string>& lines);

/// Renders an error response; the message is flattened to one line.
std::string EncodeErr(const std::string& message);

/// Splits `text` into lines for EncodeOk (trailing newline ignored).
std::vector<std::string> SplitLines(const std::string& text);

/// Parsed response, the client side of the framing.
struct Response {
  bool ok = false;
  std::string error;               ///< when !ok
  std::vector<std::string> lines;  ///< when ok
};

}  // namespace server
}  // namespace maybms

#endif  // MAYBMS_SERVER_PROTOCOL_H_
