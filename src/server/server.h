// A concurrent multi-session TCP query server over one SharedCatalog.
//
// Threading: one I/O thread accepts connections and polls idle sockets;
// complete request lines dispatch to a TaskPool of N workers, each
// executing statements through the connection's own sql::Session —
// reads against a snapshot-isolated COW copy of the catalog, writes
// funneled through SharedCatalog::ExecuteWrite (per-relation locks +
// WAL-ordered commits). One statement runs per connection at a time, so
// responses keep request order; distinct connections run in parallel.
//
// Robustness: admission control caps statements in flight across the
// server (excess requests get an immediate ERR instead of unbounded
// queueing), and each connection has a token-bucket rate limit.
// Counters (served, errors, rejections) are exposed for monitoring and
// through the ".stats" dot-command.
#ifndef MAYBMS_SERVER_SERVER_H_
#define MAYBMS_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "server/shared_catalog.h"

namespace maybms {
namespace server {

struct ServerOptions {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (read it back
  /// via Server::port()).
  uint16_t port = 0;
  /// Worker threads executing statements (0 = DefaultNumThreads()).
  size_t workers = 0;
  /// Statements admitted concurrently across all connections; requests
  /// beyond this answer "ERR server overloaded" immediately. 0 = 4 ×
  /// workers.
  size_t max_in_flight = 0;
  /// Per-connection token bucket: sustained statements/second (0 = no
  /// limit) with `rate_burst` tokens of headroom.
  double rate_qps = 0.0;
  double rate_burst = 16.0;
  /// Entries in the read-statement result cache, keyed on (catalog
  /// version, session-settings fingerprint, statement text). Publishing
  /// a write bumps the version, so stale entries can never be served —
  /// they just age out of the LRU. 0 disables the cache.
  size_t result_cache_entries = 256;
};

/// Monitoring counters (also rendered by the ".stats" dot-command).
struct ServerCounters {
  uint64_t connections_accepted = 0;
  uint64_t requests_served = 0;  ///< OK responses
  uint64_t sql_errors = 0;       ///< ERR from parse/execution
  uint64_t rejected_rate_limit = 0;
  uint64_t rejected_overload = 0;
  uint64_t result_cache_hits = 0;
  uint64_t result_cache_misses = 0;
};

class Server {
 public:
  /// Binds, spawns the I/O thread and workers, and begins serving.
  /// `catalog` must outlive the server.
  static Result<std::unique_ptr<Server>> Start(SharedCatalog* catalog,
                                               ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Stops accepting, drains in-flight statements, closes connections
  /// and joins every thread. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }
  ServerCounters counters() const;

 private:
  struct Conn;

  Server() = default;

  void IoLoop();
  /// Executes one request line on a worker; writes the response.
  void ServeLine(const std::shared_ptr<Conn>& conn, std::string line);
  /// Executes one parsed statement (SET → the connection's session,
  /// reads → snapshot copy behind the result cache, writes → the shared
  /// catalog) and sends the response.
  void ServeStatement(const std::shared_ptr<Conn>& conn,
                      const sql::Statement& stmt, const std::string& line);
  /// Result-cache probe: bumps the entry to the LRU front on a hit.
  std::optional<std::string> CacheLookup(const std::string& key);
  void CacheInsert(const std::string& key, std::string response);
  /// Handles ".ping" / ".stats" / ".sleep ms" / ".quit"; true if `line`
  /// was a dot-command.
  bool ServeDotCommand(const std::shared_ptr<Conn>& conn,
                       const std::string& line);
  void SendAll(const std::shared_ptr<Conn>& conn, const std::string& data);
  /// Re-arms the connection on the poll set (or reaps it) after a
  /// worker finished, and dispatches its next buffered line if any.
  void FinishStatement(const std::shared_ptr<Conn>& conn);
  /// Dispatches `line`, applying admission control and rate limiting.
  void Dispatch(const std::shared_ptr<Conn>& conn, std::string line);
  void WakeIo();

  SharedCatalog* catalog_ = nullptr;
  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: worker → poll loop

  std::unique_ptr<TaskPool> workers_;
  std::thread io_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  std::map<int, std::shared_ptr<Conn>> conns_;  ///< by fd

  std::atomic<uint64_t> in_flight_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> sql_errors_{0};
  std::atomic<uint64_t> rejected_rate_limit_{0};
  std::atomic<uint64_t> rejected_overload_{0};

  /// Read-statement result cache (see ServerOptions::result_cache_entries).
  struct CacheEntry {
    std::string response;  ///< the full encoded OK response
    std::list<std::string>::iterator lru_it;
  };
  std::mutex cache_mu_;
  std::unordered_map<std::string, CacheEntry> cache_;
  std::list<std::string> cache_lru_;  ///< front = most recently used
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
};

}  // namespace server
}  // namespace maybms

#endif  // MAYBMS_SERVER_SERVER_H_
