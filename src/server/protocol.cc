#include "server/protocol.h"

namespace maybms {
namespace server {

std::string EncodeOk(const std::vector<std::string>& lines) {
  std::string out = "OK " + std::to_string(lines.size()) + "\n";
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

std::string EncodeErr(const std::string& message) {
  std::string flat;
  flat.reserve(message.size());
  for (char c : message) flat += (c == '\n' || c == '\r') ? ' ' : c;
  return "ERR " + flat + "\n";
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

}  // namespace server
}  // namespace maybms
