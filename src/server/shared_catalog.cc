#include "server/shared_catalog.h"

#include <utility>

#include "common/logging.h"

namespace maybms {
namespace server {

bool IsReadStatement(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect:
    case sql::Statement::Kind::kExplain:
    case sql::Statement::Kind::kShow:
      return true;
    default:
      return false;
  }
}

SharedCatalog::SharedCatalog(WsdDb initial) : writer_(std::move(initial)) {
  Publish();
}

SharedCatalog::~SharedCatalog() {
  // Readers are gone by contract (the server joins its workers before
  // destroying the catalog); drop the published version so the limbo
  // list is the only owner left, then let members unwind.
}

void SharedCatalog::Publish() {
  std::lock_guard<std::mutex> lock(commit_mu_);
  PublishLocked();
}

void SharedCatalog::PublishLocked() {
  auto next = std::make_shared<const WsdDb>(writer_.db());
  const WsdDb* raw = next.get();
  std::shared_ptr<const WsdDb> old = std::move(published_owner_);
  published_owner_ = std::move(next);
  published_.store(raw, std::memory_order_seq_cst);
  version_.fetch_add(1, std::memory_order_acq_rel);
  if (old != nullptr) epochs_.Retire(std::move(old));
}

WsdDb SharedCatalog::SnapshotCopy() const {
  EpochManager::Guard guard(&epochs_);
  const WsdDb* v = published_.load(std::memory_order_seq_cst);
  return WsdDb(*v);  // COW: shares tuple vectors and components
}

std::string SharedCatalog::TargetRelation(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::Statement::Kind::kCreateTable:
      return stmt.create_table->name;
    case sql::Statement::Kind::kInsert:
      return stmt.insert->table;
    case sql::Statement::Kind::kDropTable:
      return stmt.drop_table->name;
    case sql::Statement::Kind::kEnforce:
      return stmt.enforce->table;
    case sql::Statement::Kind::kRepair:
      return stmt.repair->table;
    case sql::Statement::Kind::kDelete:
      return stmt.delete_stmt->table;
    default:
      return std::string();  // SAVE/LOAD/CHECKPOINT: catalog-wide
  }
}

Result<sql::StatementResult> SharedCatalog::ExecuteWrite(
    const sql::Statement& stmt) {
  MAYBMS_CHECK(!IsReadStatement(stmt)) << "read routed to ExecuteWrite";
  if (stmt.kind == sql::Statement::Kind::kSet) {
    // Settings are session-local; applying one to the shared writer
    // would silently change every subsequent commit's semantics.
    return Status::Unsupported(
        "SET is session-local; it must run on the requesting session, "
        "not the shared writer");
  }
  if (stmt.kind == sql::Statement::Kind::kLoadDb && stmt.load_db->mapped) {
    return Status::Unsupported(
        "LOAD DATABASE ... MAPPED is not available on the server; "
        "load eagerly (snapshots served to sessions must be resident)");
  }

  const std::string target = TargetRelation(stmt);
  if (target.empty()) {
    // Catalog-wide: exclusive against every per-relation writer.
    std::unique_lock<std::shared_mutex> excl(relation_locks_);
    std::lock_guard<std::mutex> commit(commit_mu_);
    auto result = writer_.ExecuteParsed(stmt);
    PublishLocked();
    return result;
  }

  std::shared_lock<std::shared_mutex> shared(relation_locks_);
  std::mutex* rel_mu;
  {
    std::lock_guard<std::mutex> lock(lock_table_mu_);
    std::unique_ptr<std::mutex>& slot = lock_table_[target];
    if (slot == nullptr) slot = std::make_unique<std::mutex>();
    rel_mu = slot.get();
  }
  std::lock_guard<std::mutex> rel_lock(*rel_mu);
  // ENFORCE can merge components shared with other relations' tuples
  // and REPAIR allocates component ids — both read/write state beyond
  // the target relation. The commit mutex already covers them: every
  // write to the authoritative database happens under it, in WAL order.
  std::lock_guard<std::mutex> commit(commit_mu_);
  auto result = writer_.ExecuteParsed(stmt);
  PublishLocked();
  return result;
}

}  // namespace server
}  // namespace maybms
