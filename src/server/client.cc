#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace maybms {
namespace server {

Result<Client> Client::Connect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError(std::string("connect: ") + std::strerror(errno));
  }
  return Client(fd);
}

Client& Client::operator=(Client&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    buf_ = std::move(o.buf_);
    o.fd_ = -1;
  }
  return *this;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Result<std::string> Client::ReadLine() {
  for (;;) {
    const size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Status::IOError("connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    buf_.append(chunk, static_cast<size_t>(n));
  }
}

Result<Response> Client::Execute(const std::string& statement) {
  if (fd_ < 0) return Status::IOError("client closed");
  std::string req = statement;
  req += '\n';
  size_t off = 0;
  while (off < req.size()) {
    const ssize_t n =
        ::send(fd_, req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }

  MAYBMS_ASSIGN_OR_RETURN(std::string head, ReadLine());
  Response resp;
  if (head.rfind("ERR ", 0) == 0) {
    resp.ok = false;
    resp.error = head.substr(4);
    return resp;
  }
  if (head.rfind("OK ", 0) != 0) {
    return Status::ParseError("malformed response header: " + head);
  }
  char* end = nullptr;
  const unsigned long n_lines = std::strtoul(head.c_str() + 3, &end, 10);
  if (end == head.c_str() + 3 || *end != '\0') {
    return Status::ParseError("malformed response count: " + head);
  }
  resp.ok = true;
  resp.lines.reserve(n_lines);
  for (unsigned long i = 0; i < n_lines; ++i) {
    MAYBMS_ASSIGN_OR_RETURN(std::string line, ReadLine());
    resp.lines.push_back(std::move(line));
  }
  return resp;
}

}  // namespace server
}  // namespace maybms
